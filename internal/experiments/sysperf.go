package experiments

import (
	"context"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/core"
	"batterylab/internal/mirror"
	"batterylab/internal/stats"
)

// SysPerfReport reproduces the §4.2 "System Performance" numbers.
type SysPerfReport struct {
	// CtlCPUExtraAvg: average controller CPU added by mirroring (the
	// paper: "extra 50 %, on average").
	CtlCPUExtraAvg float64
	// MemExtraPct: memory added by mirroring as % of the Pi's 1 GB
	// (paper: ~6 %).
	MemExtraPct float64
	// MemTotalPct: total memory utilization with mirroring (paper:
	// < 20 %).
	MemTotalPct float64
	// UploadMB: device→controller stream volume over the test (paper:
	// ~32 MB per ~7 min).
	UploadMB float64
	// UploadBoundMB: the 1 Mbps encoding-cap upper bound for the same
	// window (paper: ~50 MB).
	UploadBoundMB float64
	// TestDuration is the measured window.
	TestDuration time.Duration
	// LatencyMean/LatencyStd: the click-to-photon mirroring latency
	// over LatencyTrials co-located trials (paper: 1.44 ± 0.12 s over
	// 40).
	LatencyMean   float64
	LatencyStd    float64
	LatencyTrials int
}

// SysPerf runs the Chrome workload with and without mirroring and
// derives the system-performance report.
func SysPerf(opts Options) (*SysPerfReport, error) {
	opts = opts.withDefaults()
	prof, err := browser.FindProfile("Chrome")
	if err != nil {
		return nil, err
	}
	run := func(mirroring bool, seed uint64) (*core.Result, *Env, error) {
		env, err := NewEnv(seed)
		if err != nil {
			return nil, nil, err
		}
		res, err := env.Plat.RunExperiment(context.Background(), core.ExperimentSpec{
			Node: "node1", Device: env.Serial,
			SampleRate: opts.SampleRate,
			Mirroring:  mirroring,
			Workload: func(drv automation.Driver) *automation.Script {
				return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
			},
		})
		return res, env, err
	}

	plain, _, err := run(false, opts.Seed)
	if err != nil {
		return nil, err
	}
	mirrored, envM, err := run(true, opts.Seed+7)
	if err != nil {
		return nil, err
	}

	rep := &SysPerfReport{TestDuration: mirrored.Duration}
	rep.CtlCPUExtraAvg = mirrored.ControllerCPU.Summary().Mean - plain.ControllerCPU.Summary().Mean

	// Memory: sample with the session still conceptually active — rerun
	// the delta from the host model directly.
	baseMem := 100 * float64(128+14) / 1024 // raspbian + monsoon poller
	sess, err := envM.Ctl.MirrorSession(envM.Serial)
	if err != nil {
		return nil, err
	}
	if err := sess.Start(0); err != nil {
		return nil, err
	}
	withMem := envM.Ctl.Host().MemoryPercent()
	sess.Stop()
	rep.MemExtraPct = withMem - baseMem
	rep.MemTotalPct = withMem

	rep.UploadMB = float64(mirrored.MirrorUploadBytes) / 1e6
	rep.UploadBoundMB = mirror.DefaultBitrateMbps * 1e6 / 8 * mirrored.Duration.Seconds() / 1e6

	probe := mirror.NewLatencyProbe(opts.Seed, time.Millisecond)
	samples := probe.Measure(40)
	lat := stats.Summarize(samples) // one pass for mean and std
	rep.LatencyMean = lat.Mean
	rep.LatencyStd = lat.Std
	rep.LatencyTrials = len(samples)
	return rep, nil
}
