package experiments

import (
	"batterylab/internal/device"
)

// newSecondDevice attaches another J7 Duo to the env's vantage point —
// the multi-device configuration the relay switch exists for.
func newSecondDevice(env *Env) (*device.Device, error) {
	d, err := device.New(env.Clk, device.Config{
		Seed:   env.Dev.Config().Seed + 71,
		Serial: "J7DUO000002",
	})
	if err != nil {
		return nil, err
	}
	if err := env.Ctl.AttachDevice(d); err != nil {
		return nil, err
	}
	return d, nil
}
