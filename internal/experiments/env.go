// Package experiments reproduces the paper's evaluation (§4): every
// figure and table has a function that builds a fresh simulated
// deployment, runs the corresponding workload, and returns the same rows
// or series the paper reports. The bench harness (bench_test.go,
// cmd/blab-bench) and EXPERIMENTS.md are generated from these.
package experiments

import (
	"fmt"
	"time"

	"batterylab/internal/browser"
	"batterylab/internal/controller"
	"batterylab/internal/core"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

// VideoPath is where the Fig. 2 workload's media lives on the sdcard.
const VideoPath = "/sdcard/blab-accuracy.mp4"

// Env is a fresh single-vantage-point deployment on a virtual clock —
// the paper's Imperial College setup: one Monsoon, one Samsung J7 Duo,
// one Raspberry Pi, one Meross socket.
type Env struct {
	Clk    *simclock.Virtual
	Plat   *core.Platform
	Ctl    *controller.Controller
	Dev    *device.Device
	Serial string

	browsers map[string]*browser.Browser
}

// NewEnv builds the deployment: platform joined by one vantage point
// hosting one device with the four study browsers and the video player
// installed.
func NewEnv(seed uint64) (*Env, error) {
	clk := simclock.NewVirtual()
	plat, err := core.NewPlatform(clk, seed)
	if err != nil {
		return nil, err
	}
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: seed})
	if err != nil {
		return nil, err
	}
	dev, err := device.New(clk, device.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := ctl.AttachDevice(dev); err != nil {
		return nil, err
	}
	if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
		return nil, err
	}

	env := &Env{
		Clk: clk, Plat: plat, Ctl: ctl, Dev: dev, Serial: dev.Serial(),
		browsers: make(map[string]*browser.Browser),
	}
	for _, prof := range browser.Profiles() {
		b := browser.New(prof, ctl.AP(), func() string { return ctl.Region() })
		if err := dev.Install(b); err != nil {
			return nil, err
		}
		env.browsers[prof.Name] = b
	}
	if err := dev.Storage().Push(VideoPath, video.SampleMP4(4<<20)); err != nil {
		return nil, err
	}
	if err := dev.Install(video.NewPlayer(VideoPath)); err != nil {
		return nil, err
	}
	return env, nil
}

// Browser returns an installed study browser by name.
func (e *Env) Browser(name string) (*browser.Browser, error) {
	b, ok := e.browsers[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no browser %q", name)
	}
	return b, nil
}

// BrowserNames lists the study browsers in the paper's order.
func BrowserNames() []string { return []string{"Brave", "Chrome", "Edge", "Firefox"} }

// Options tunes experiment scale. Zero values select the paper's
// parameters; tests shrink them to stay fast.
type Options struct {
	// Seed drives the whole deployment.
	Seed uint64
	// Repetitions per configuration (paper: 5).
	Repetitions int
	// Pages per browser run (paper: 10 news sites).
	Pages int
	// Scrolls per page (paper: "multiple"; default 8).
	Scrolls int
	// SampleRate for the monitor (default 250 Hz for sweeps; the
	// hardware tops at 5 kHz).
	SampleRate int
	// VideoDuration for the accuracy experiment (paper: 5 minutes).
	VideoDuration time.Duration
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2019
	}
	if o.Repetitions == 0 {
		o.Repetitions = 5
	}
	if o.Pages == 0 {
		o.Pages = 10
	}
	if o.Scrolls == 0 {
		o.Scrolls = 8
	}
	if o.SampleRate == 0 {
		o.SampleRate = 250
	}
	if o.VideoDuration == 0 {
		o.VideoDuration = 5 * time.Minute
	}
	return o
}

// browserWorkloadOpts converts Options to the §4.2 workload parameters.
func (o Options) browserWorkloadOpts() browser.WorkloadOptions {
	return browser.WorkloadOptions{
		Pages:   browser.NewsSites()[:o.Pages],
		Scrolls: o.Scrolls,
	}
}
