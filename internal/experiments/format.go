package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"batterylab/internal/vpn"
)

// The Format helpers render experiment results as the text tables
// cmd/blab-bench prints and EXPERIMENTS.md embeds.

func table(f func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	f(w)
	w.Flush()
	return b.String()
}

// FormatFig2 renders the accuracy CDFs as quantile rows.
func FormatFig2(rows []Fig2Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 2: CDF of current drawn during 5-min video (mA)")
		fmt.Fprintln(w, "scenario\tp10\tp25\tp50\tp75\tp90")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.Scenario,
				r.CDF.Quantile(0.10), r.CDF.Quantile(0.25), r.CDF.Quantile(0.50),
				r.CDF.Quantile(0.75), r.CDF.Quantile(0.90))
		}
	})
}

// FormatFig3 renders the browser energy bars.
func FormatFig3(rows []Fig3Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 3: per-browser battery discharge (mAh, mean±std)")
		fmt.Fprintln(w, "browser\tmirror off\tmirror on\textra")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.2f±%.2f\t%.2f±%.2f\t%+.2f\n",
				r.Browser,
				r.MirrorOff.Mean, r.MirrorOff.Std,
				r.MirrorOn.Mean, r.MirrorOn.Std,
				r.MirrorOn.Mean-r.MirrorOff.Mean)
		}
	})
}

// FormatFig4 renders the device-CPU CDFs.
func FormatFig4(rows []Fig4Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 4: CDF of device CPU utilization (%)")
		fmt.Fprintln(w, "browser\tmirroring\tp25\tp50\tp75\tp90")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%.1f\t%.1f\t%.1f\t%.1f\n",
				r.Browser, r.Mirroring,
				r.CDF.Quantile(0.25), r.CDF.Quantile(0.50),
				r.CDF.Quantile(0.75), r.CDF.Quantile(0.90))
		}
	})
}

// FormatFig5 renders the controller-CPU CDFs.
func FormatFig5(rows []Fig5Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 5: CDF of controller (Pi 3B+) CPU utilization (%)")
		fmt.Fprintln(w, "mirroring\tp10\tp50\tp90\tfrac>95%")
		for _, r := range rows {
			fracOver := 1 - r.CDF.At(95)
			fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%.1f\t%.2f\n",
				r.Mirroring,
				r.CDF.Quantile(0.10), r.CDF.Quantile(0.50), r.CDF.Quantile(0.90),
				fracOver)
		}
	})
}

// FormatTable2 renders the VPN statistics.
func FormatTable2(rows []vpn.SpeedtestResult) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table 2: ProtonVPN statistics (D=down, U=up, L=RTT)")
		fmt.Fprintln(w, "country\tserver (km)\tD (Mbps)\tU (Mbps)\tL (ms)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s (%.2f)\t%.2f\t%.2f\t%.2f\n",
				r.Country, r.Location, r.SpeedtestKm, r.DownMbps, r.UpMbps, r.LatencyMS)
		}
	})
}

// FormatFig6 renders the VPN energy bars.
func FormatFig6(rows []Fig6Row) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 6: energy through VPN tunnels (mAh, mean±std)")
		fmt.Fprintln(w, "location\tcountry\tbrowser\tenergy")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\t%.2f±%.2f\n",
				r.Location, r.Country, r.Browser, r.Energy.Mean, r.Energy.Std)
		}
	})
}

// FormatSysPerf renders the §4.2 system performance report.
func FormatSysPerf(r *SysPerfReport) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "System performance (§4.2)")
		fmt.Fprintf(w, "controller CPU extra (avg)\t%+.1f %%\n", r.CtlCPUExtraAvg)
		fmt.Fprintf(w, "memory extra\t%+.1f %% of 1 GB\n", r.MemExtraPct)
		fmt.Fprintf(w, "memory total\t%.1f %%\n", r.MemTotalPct)
		fmt.Fprintf(w, "stream upload\t%.1f MB over %s (bound %.1f MB)\n",
			r.UploadMB, r.TestDuration.Round(1e9), r.UploadBoundMB)
		fmt.Fprintf(w, "mirroring latency\t%.2f ± %.2f s (%d trials)\n",
			r.LatencyMean, r.LatencyStd, r.LatencyTrials)
	})
}

// FormatRelayOverhead renders the relay ablation.
func FormatRelayOverhead(r *RelayOverheadReport) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Ablation: relay circuit overhead")
		fmt.Fprintf(w, "direct median\t%.1f mA\n", r.DirectMedianMA)
		fmt.Fprintf(w, "relay median\t%.1f mA\n", r.RelayMedianMA)
		fmt.Fprintf(w, "delta\t%.2f %%\n", r.DeltaPct)
		fmt.Fprintf(w, "KS distance\t%.3f\n", r.KSDistance)
	})
}

// FormatBitrate renders the bitrate ablation.
func FormatBitrate(rows []BitrateRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Ablation: mirroring bitrate cap (paper: %.1f Mbps)\n", mirrorDefaultCap)
		fmt.Fprintln(w, "cap (Mbps)\tdevice CPU (%)\tupload (MB/min)\tcurrent (mA)")
		for _, r := range rows {
			fmt.Fprintf(w, "%.1f\t%.1f\t%.1f\t%.1f\n", r.CapMbps, r.DeviceCPUPct, r.UploadMB, r.CurrentMA)
		}
	})
}

// FormatSampleRate renders the sampling-rate ablation.
func FormatSampleRate(rows []SampleRateRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Ablation: monitor sampling rate vs energy estimate")
		fmt.Fprintln(w, "rate (Hz)\tsamples\tenergy (mAh)\terror vs 5 kHz (%)")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r.RateHz, r.SampleCount, r.EnergyMAH, r.ErrorPct)
		}
	})
}

// FormatAutomation renders the automation-channel ablation.
func FormatAutomation(rows []AutomationRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Ablation: automation channel vs measurement purity")
		fmt.Fprintln(w, "channel\tmeasured (mA)\ttrue (mA)\tdistortion (%)\tmirroring")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%v\n",
				r.Channel, r.MeasuredMA, r.TrueMA, r.DistortionPct, r.SupportsMirror)
		}
	})
}

// FormatScheduler renders the scheduler ablation.
func FormatScheduler(rows []SchedulerRow) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Ablation: queue policy (6 builds, 2 devices)")
		fmt.Fprintln(w, "policy\tmakespan (s)\tavg wait (s)\tbuilds")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%d\n", r.Policy, r.MakespanS, r.AvgWaitS, r.BuildCount)
		}
	})
}

// FormatCampaign renders the campaign sweep: per-run energies plus the
// concurrency win over a sequential for-loop.
func FormatCampaign(rep *CampaignReport) string {
	out := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Campaign sweep: concurrent runs across vantage points")
		fmt.Fprintln(w, "node\tbrowser\tdischarge (mAh)")
		for _, r := range rep.Rows {
			if r.Err != "" {
				fmt.Fprintf(w, "%s\t%s\tFAILED: %s\n", r.Node, r.Browser, r.Err)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\n", r.Node, r.Browser, r.EnergyMAH)
		}
	})
	speedup := 0.0
	if rep.Makespan > 0 {
		speedup = rep.SequentialSum.Seconds() / rep.Makespan.Seconds()
	}
	return out + fmt.Sprintf("makespan %s vs %s sequential (%.2fx)\n",
		rep.Makespan.Round(time.Second), rep.SequentialSum.Round(time.Second), speedup)
}
