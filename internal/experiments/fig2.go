package experiments

import (
	"fmt"

	"batterylab/internal/mirror"
	"batterylab/internal/stats"
	"batterylab/internal/video"
)

// Fig2Row is one CDF series of the paper's Figure 2: the current drawn
// during 5 minutes of mp4 playback under one wiring/mirroring scenario.
type Fig2Row struct {
	Scenario string
	CDF      *stats.CDF
}

// Fig2Scenarios lists the four curves of the figure.
func Fig2Scenarios() []string {
	return []string{"direct", "relay", "direct-mirroring", "relay-mirroring"}
}

// Fig2Accuracy reproduces Figure 2 (§4.1): the accuracy comparison
// between the Monsoon-recommended direct wiring and BatteryLab's relay
// wiring, with and without device mirroring. The expected shape: direct
// and relay nearly coincide; mirroring lifts the median by ~60 mA in
// both wirings.
func Fig2Accuracy(opts Options) ([]Fig2Row, error) {
	opts = opts.withDefaults()
	var rows []Fig2Row
	for i, scenario := range Fig2Scenarios() {
		env, err := NewEnv(opts.Seed + uint64(i)*1000)
		if err != nil {
			return nil, err
		}
		cdf, err := fig2Scenario(env, scenario, opts)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", scenario, err)
		}
		rows = append(rows, Fig2Row{Scenario: scenario, CDF: cdf})
	}
	return rows, nil
}

func fig2Scenario(env *Env, scenario string, opts Options) (*stats.CDF, error) {
	direct := scenario == "direct" || scenario == "direct-mirroring"
	mirroring := scenario == "direct-mirroring" || scenario == "relay-mirroring"

	// The automation channel must be measurement-safe before USB goes
	// away.
	if err := env.Ctl.ADB().EnableTCPIP(env.Serial); err != nil {
		return nil, err
	}
	if _, err := env.Ctl.Exec("adb_transport", env.Serial, "wifi"); err != nil {
		return nil, err
	}
	// Start playback, then measure steady state.
	if err := env.Dev.LaunchApp(video.PackageName); err != nil {
		return nil, err
	}

	var sess *mirror.Session
	if mirroring {
		var err error
		sess, err = env.Ctl.MirrorSession(env.Serial)
		if err != nil {
			return nil, err
		}
		if err := sess.Start(0); err != nil {
			return nil, err
		}
		defer sess.Stop()
	}

	if !env.Ctl.Monsoon().Powered() {
		env.Ctl.PowerMonitor()
	}
	if err := env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage()); err != nil {
		return nil, err
	}

	if direct {
		// Direct wiring: the phone's V+ goes straight to the Monsoon's
		// Vout — no relay in the loop, following the Monsoon's cabling
		// instructions. The device is manually placed on the monitor
		// supply and the hub's port is left unpowered.
		if err := env.Ctl.USBPower(env.Serial, false); err != nil {
			return nil, err
		}
		env.Dev.SetRelayPosition(false)
		env.Ctl.Monsoon().WireSource(env.Dev.Rail())
		if err := env.Ctl.Monsoon().StartSampling(opts.SampleRate); err != nil {
			return nil, err
		}
		env.Clk.Advance(opts.VideoDuration)
		series, err := env.Ctl.Monsoon().StopSampling()
		if err != nil {
			return nil, err
		}
		env.Dev.SetRelayPosition(true)
		return series.CDF()
	}

	// Relay wiring: the platform's own measurement path.
	if err := env.Ctl.StartMonitor(env.Serial, opts.SampleRate); err != nil {
		return nil, err
	}
	env.Clk.Advance(opts.VideoDuration)
	series, err := env.Ctl.StopMonitor()
	if err != nil {
		return nil, err
	}
	return series.CDF()
}

// Fig2Gap summarizes the figure's two findings: the direct↔relay KS
// distance (should be negligible) and the mirroring median lift.
type Fig2Gap struct {
	DirectRelayKS    float64
	MedianNoMirror   float64
	MedianMirrorring float64
	MirrorLiftMA     float64
}

// SummarizeFig2 computes the gap metrics from the four rows.
func SummarizeFig2(rows []Fig2Row) (Fig2Gap, error) {
	byName := map[string]*stats.CDF{}
	for _, r := range rows {
		byName[r.Scenario] = r.CDF
	}
	for _, want := range Fig2Scenarios() {
		if byName[want] == nil {
			return Fig2Gap{}, fmt.Errorf("fig2: missing scenario %s", want)
		}
	}
	g := Fig2Gap{
		DirectRelayKS:    stats.KSDistance(byName["direct"], byName["relay"]),
		MedianNoMirror:   byName["relay"].Median(),
		MedianMirrorring: byName["relay-mirroring"].Median(),
	}
	g.MirrorLiftMA = g.MedianMirrorring - g.MedianNoMirror
	return g, nil
}
