package experiments

import (
	"fmt"
	"math"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/adb"
	"batterylab/internal/mirror"
	"batterylab/internal/stats"
	"batterylab/internal/video"
)

// This file holds the ablation studies DESIGN.md calls out: each
// isolates one design choice of the platform and quantifies its cost.

// RelayOverheadReport quantifies the circuit switch's measurement cost
// (the design choice behind Fig. 2's "negligible difference" claim).
type RelayOverheadReport struct {
	DirectMedianMA float64
	RelayMedianMA  float64
	DeltaPct       float64
	KSDistance     float64
}

// AblationRelayOverhead measures direct vs relay wiring.
func AblationRelayOverhead(opts Options) (*RelayOverheadReport, error) {
	opts = opts.withDefaults()
	rows, err := Fig2Accuracy(opts)
	if err != nil {
		return nil, err
	}
	byName := map[string]*stats.CDF{}
	for _, r := range rows {
		byName[r.Scenario] = r.CDF
	}
	rep := &RelayOverheadReport{
		DirectMedianMA: byName["direct"].Median(),
		RelayMedianMA:  byName["relay"].Median(),
		KSDistance:     stats.KSDistance(byName["direct"], byName["relay"]),
	}
	rep.DeltaPct = 100 * (rep.RelayMedianMA - rep.DirectMedianMA) / rep.DirectMedianMA
	return rep, nil
}

// BitrateRow is one row of the encoder-cap ablation.
type BitrateRow struct {
	CapMbps      float64
	DeviceCPUPct float64 // mean device CPU during mirrored video
	UploadMB     float64
	CurrentMA    float64 // mean draw
}

// AblationBitrate sweeps the scrcpy bitrate cap during mirrored video
// playback: the knob trades stream quality for device CPU, upload volume
// and battery cost. The paper pins it at 1 Mbps.
func AblationBitrate(opts Options, caps []float64) ([]BitrateRow, error) {
	opts = opts.withDefaults()
	if len(caps) == 0 {
		caps = []float64{0.5, 1, 2, 4}
	}
	const window = time.Minute
	var rows []BitrateRow
	for i, cap := range caps {
		env, err := NewEnv(opts.Seed + uint64(i)*4409)
		if err != nil {
			return nil, err
		}
		if err := env.Ctl.ADB().EnableTCPIP(env.Serial); err != nil {
			return nil, err
		}
		if err := env.Ctl.ADB().SetTransport(env.Serial, adb.TransportWiFi); err != nil {
			return nil, err
		}
		if err := env.Dev.LaunchApp(video.PackageName); err != nil {
			return nil, err
		}
		sess, err := env.Ctl.MirrorSession(env.Serial)
		if err != nil {
			return nil, err
		}
		if err := sess.Start(cap); err != nil {
			return nil, err
		}
		env.Ctl.PowerMonitor()
		env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage())
		if err := env.Ctl.StartMonitor(env.Serial, opts.SampleRate); err != nil {
			return nil, err
		}
		var cpuSamples []float64
		startBytes := sess.BytesSent()
		for t := time.Duration(0); t < window; t += time.Second {
			env.Clk.Advance(time.Second)
			cpuSamples = append(cpuSamples, env.Dev.CPU().UtilAt(env.Clk.Now()))
		}
		series, err := env.Ctl.StopMonitor()
		if err != nil {
			return nil, err
		}
		rows = append(rows, BitrateRow{
			CapMbps:      cap,
			DeviceCPUPct: stats.Mean(cpuSamples),
			UploadMB:     float64(sess.BytesSent()-startBytes) / 1e6,
			CurrentMA:    series.Summary().Mean,
		})
		sess.Stop()
	}
	return rows, nil
}

// SampleRateRow is one row of the sampling-rate ablation.
type SampleRateRow struct {
	RateHz      int
	EnergyMAH   float64
	ErrorPct    float64 // vs the 5 kHz reference
	SampleCount int
}

// AblationSampleRate sweeps the monitor's sampling rate on an identical
// video workload and reports the energy-estimate error relative to the
// full 5 kHz hardware rate — the justification for decimating long
// sweeps.
func AblationSampleRate(opts Options, rates []int) ([]SampleRateRow, error) {
	opts = opts.withDefaults()
	if len(rates) == 0 {
		rates = []int{50, 250, 1000, 5000}
	}
	const window = 30 * time.Second
	run := func(rate int) (float64, int, error) {
		env, err := NewEnv(opts.Seed) // same seed: identical workload
		if err != nil {
			return 0, 0, err
		}
		if err := env.Ctl.ADB().EnableTCPIP(env.Serial); err != nil {
			return 0, 0, err
		}
		if err := env.Ctl.ADB().SetTransport(env.Serial, adb.TransportWiFi); err != nil {
			return 0, 0, err
		}
		if err := env.Dev.LaunchApp(video.PackageName); err != nil {
			return 0, 0, err
		}
		env.Ctl.PowerMonitor()
		env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage())
		if err := env.Ctl.StartMonitor(env.Serial, rate); err != nil {
			return 0, 0, err
		}
		env.Clk.Advance(window)
		series, err := env.Ctl.StopMonitor()
		if err != nil {
			return 0, 0, err
		}
		return series.EnergyMAH(), series.Len(), nil
	}
	ref, _, err := run(5000)
	if err != nil {
		return nil, err
	}
	var rows []SampleRateRow
	for _, rate := range rates {
		e, n, err := run(rate)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SampleRateRow{
			RateHz:      rate,
			EnergyMAH:   e,
			ErrorPct:    100 * math.Abs(e-ref) / ref,
			SampleCount: n,
		})
	}
	return rows, nil
}

// AutomationRow is one row of the automation-channel ablation.
type AutomationRow struct {
	Channel        string
	MeasuredMA     float64 // what the monitor sees
	TrueMA         float64 // the device's actual draw
	DistortionPct  float64
	SupportsMirror bool
}

// AblationAutomation quantifies §3.3's channel trade-off: the monitor's
// view of an idle device when automation runs over USB (port powered —
// distorted), WiFi, or the Bluetooth keyboard.
func AblationAutomation(opts Options) ([]AutomationRow, error) {
	opts = opts.withDefaults()
	const window = 20 * time.Second
	channels := []struct {
		name    string
		mirror  bool
		prepare func(env *Env) error
	}{
		{"adb-usb", true, func(env *Env) error {
			// Leave the USB port powered: the forbidden configuration.
			env.Ctl.PowerMonitor()
			if err := env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage()); err != nil {
				return err
			}
			if _, err := env.Ctl.BattSwitch(env.Serial); err != nil { // relay to bypass
				return err
			}
			env.Ctl.Monsoon().WireSource(env.Dev.MonitorVisibleSource())
			return env.Ctl.Monsoon().StartSampling(opts.SampleRate)
		}},
		{"adb-wifi", true, func(env *Env) error {
			if err := env.Ctl.ADB().EnableTCPIP(env.Serial); err != nil {
				return err
			}
			if err := env.Ctl.ADB().SetTransport(env.Serial, adb.TransportWiFi); err != nil {
				return err
			}
			env.Ctl.PowerMonitor()
			if err := env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage()); err != nil {
				return err
			}
			return env.Ctl.StartMonitor(env.Serial, opts.SampleRate)
		}},
		{"bt-keyboard", false, func(env *Env) error {
			env.Ctl.PowerMonitor()
			if err := env.Ctl.SetVoltage(env.Dev.Battery().NominalVoltage()); err != nil {
				return err
			}
			return env.Ctl.StartMonitor(env.Serial, opts.SampleRate)
		}},
	}
	var rows []AutomationRow
	for i, ch := range channels {
		env, err := NewEnv(opts.Seed + uint64(i)*5003)
		if err != nil {
			return nil, err
		}
		if err := ch.prepare(env); err != nil {
			return nil, fmt.Errorf("ablation automation %s: %w", ch.name, err)
		}
		var trueSamples []float64
		for t := time.Duration(0); t < window; t += 200 * time.Millisecond {
			env.Clk.Advance(200 * time.Millisecond)
			trueSamples = append(trueSamples, env.Dev.CurrentMA(env.Clk.Now()))
		}
		series, err := env.Ctl.Monsoon().StopSampling()
		if err != nil {
			return nil, err
		}
		measured := series.Summary().Mean
		true_ := stats.Mean(trueSamples)
		row := AutomationRow{
			Channel:        ch.name,
			MeasuredMA:     measured,
			TrueMA:         true_,
			SupportsMirror: ch.mirror,
		}
		if true_ > 0 {
			row.DistortionPct = 100 * math.Abs(measured-true_) / true_
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SchedulerRow is one row of the queue-policy ablation.
type SchedulerRow struct {
	Policy     string
	MakespanS  float64
	AvgWaitS   float64
	BuildCount int
}

// AblationScheduler compares per-device locking (the platform's policy:
// experiments on different devices run concurrently) against
// whole-node locking, for a batch of jobs across two devices.
func AblationScheduler(opts Options) ([]SchedulerRow, error) {
	opts = opts.withDefaults()
	const jobDur = 30 * time.Second
	const jobsPerDevice = 3

	run := func(perDevice bool) (SchedulerRow, error) {
		env, err := NewEnv(opts.Seed)
		if err != nil {
			return SchedulerRow{}, err
		}
		// Second device on the same vantage point.
		dev2, err := newSecondDevice(env)
		if err != nil {
			return SchedulerRow{}, err
		}
		srv := env.Plat.Access
		admin, err := srv.Users.Add("sched-admin", accessserver.RoleAdmin)
		if err != nil {
			return SchedulerRow{}, err
		}
		serials := []string{env.Serial, dev2.Serial()}
		var builds []*accessserver.Build
		start := env.Clk.Now()
		for i := 0; i < jobsPerDevice*2; i++ {
			cons := accessserver.Constraints{Node: "node1"}
			if perDevice {
				cons.Device = serials[i%2]
			}
			name := fmt.Sprintf("job-%v-%d", perDevice, i)
			_, err := srv.CreateJob(admin, name, cons,
				func(ctx *accessserver.BuildContext, done func(error)) {
					env.Clk.AfterFunc(jobDur, func() { done(nil) })
				})
			if err != nil {
				return SchedulerRow{}, err
			}
			b, err := srv.Submit(admin, name)
			if err != nil {
				return SchedulerRow{}, err
			}
			builds = append(builds, b)
		}
		// Drive until all builds finish.
		deadline := start.Add(time.Duration(len(builds)+2) * jobDur * 2)
		for env.Clk.Now().Before(deadline) {
			allDone := true
			for _, b := range builds {
				if b.State() == accessserver.StateQueued || b.State() == accessserver.StateRunning {
					allDone = false
					break
				}
			}
			if allDone {
				break
			}
			env.Clk.Advance(time.Second)
		}
		row := SchedulerRow{BuildCount: len(builds)}
		if perDevice {
			row.Policy = "per-device-lock"
		} else {
			row.Policy = "whole-node-lock"
		}
		row.MakespanS = env.Clk.Now().Sub(start).Seconds()
		var wait float64
		for _, b := range builds {
			wait += b.QueueTime().Seconds()
		}
		row.AvgWaitS = wait / float64(len(builds))
		return row, nil
	}

	perDev, err := run(true)
	if err != nil {
		return nil, err
	}
	wholeNode, err := run(false)
	if err != nil {
		return nil, err
	}
	return []SchedulerRow{perDev, wholeNode}, nil
}

// mirrorDefaultCap re-exports the default bitrate for reports.
const mirrorDefaultCap = mirror.DefaultBitrateMbps
