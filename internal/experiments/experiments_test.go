package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// testOpts shrinks the paper's parameters so the whole suite stays fast;
// the bench harness runs the full-scale versions.
func testOpts() Options {
	return Options{
		Seed:          2019,
		Repetitions:   2,
		Pages:         3,
		Scrolls:       4,
		SampleRate:    100,
		VideoDuration: 40 * time.Second,
	}
}

func TestFig2Shapes(t *testing.T) {
	rows, err := Fig2Accuracy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	gap, err := SummarizeFig2(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: direct vs relay is negligible.
	if gap.DirectRelayKS > 0.15 {
		t.Fatalf("direct/relay KS = %.3f, want negligible", gap.DirectRelayKS)
	}
	// Claim 2: mirroring lifts the median from ~160 toward ~220 mA.
	if gap.MedianNoMirror < 140 || gap.MedianNoMirror > 185 {
		t.Fatalf("relay median = %.1f, want ~160", gap.MedianNoMirror)
	}
	if gap.MirrorLiftMA < 30 || gap.MirrorLiftMA > 100 {
		t.Fatalf("mirror lift = %.1f mA, want ~60", gap.MirrorLiftMA)
	}
	out := FormatFig2(rows)
	if !strings.Contains(out, "relay-mirroring") {
		t.Fatalf("format: %q", out)
	}
}

func TestFig3Shapes(t *testing.T) {
	rows, err := Fig3BrowserEnergy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	f := SummarizeFig3(rows)
	// Claim 1: Brave draws least, Firefox most, independent of
	// mirroring.
	if f.Order[0] != "Brave" {
		t.Fatalf("cheapest = %s, want Brave (order %v)", f.Order[0], f.Order)
	}
	if f.Order[len(f.Order)-1] != "Firefox" {
		t.Fatalf("dearest = %s, want Firefox (order %v)", f.Order[len(f.Order)-1], f.Order)
	}
	// Claim 2: the mirroring extra is positive and roughly constant
	// across browsers.
	var extras []float64
	for _, e := range f.MirrorExtras {
		if e <= 0 {
			t.Fatalf("mirroring made a browser cheaper: %v", f.MirrorExtras)
		}
		extras = append(extras, e)
	}
	mean := 0.0
	for _, e := range extras {
		mean += e
	}
	mean /= float64(len(extras))
	if f.ExtraSpreadMAH > 0.75*mean {
		t.Fatalf("mirroring extra not constant: spread %.2f vs mean %.2f (%v)",
			f.ExtraSpreadMAH, mean, f.MirrorExtras)
	}
	out := FormatFig3(rows)
	if !strings.Contains(out, "Firefox") {
		t.Fatalf("format: %q", out)
	}
}

func TestFig4Shapes(t *testing.T) {
	rows, err := Fig4DeviceCPU(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	med := map[string]float64{}
	for _, r := range rows {
		key := r.Browser
		if r.Mirroring {
			key += "+mirror"
		}
		med[key] = r.CDF.Median()
	}
	// Claim 1: Brave's median CPU ≈ 12 % vs Chrome ≈ 20 %.
	if m := med["Brave"]; m < 8 || m > 16 {
		t.Fatalf("Brave median = %.1f, want ~12", m)
	}
	if m := med["Chrome"]; m < 16 || m > 25 {
		t.Fatalf("Chrome median = %.1f, want ~20", m)
	}
	if med["Brave"] >= med["Chrome"] {
		t.Fatal("Brave should sit below Chrome")
	}
	// Claim 2: mirroring adds ≈ 5 % for both.
	for _, b := range []string{"Brave", "Chrome"} {
		delta := med[b+"+mirror"] - med[b]
		if delta < 1.5 || delta > 10 {
			t.Fatalf("%s mirroring CPU delta = %.1f, want ~5", b, delta)
		}
	}
	if !strings.Contains(FormatFig4(rows), "Chrome") {
		t.Fatal("format")
	}
}

func TestFig5Shapes(t *testing.T) {
	rows, err := Fig5ControllerCPU(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var off, on Fig5Row
	for _, r := range rows {
		if r.Mirroring {
			on = r
		} else {
			off = r
		}
	}
	// Claim 1: without mirroring the controller sits flat around 25 %.
	if m := off.CDF.Median(); m < 20 || m > 30 {
		t.Fatalf("no-mirror median = %.1f, want ~25", m)
	}
	if spread := off.CDF.Quantile(0.9) - off.CDF.Quantile(0.1); spread > 12 {
		t.Fatalf("no-mirror spread = %.1f, want flat", spread)
	}
	// Claim 2: with mirroring the median rises to ~75 % and the top
	// decile saturates.
	if m := on.CDF.Median(); m < 60 || m > 90 {
		t.Fatalf("mirror median = %.1f, want ~75", m)
	}
	fracOver95 := 1 - on.CDF.At(95)
	if fracOver95 < 0.02 || fracOver95 > 0.30 {
		t.Fatalf("frac > 95%% = %.2f, want ~0.10", fracOver95)
	}
	if !strings.Contains(FormatFig5(rows), "mirroring") {
		t.Fatal("format")
	}
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2Rows(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by download; endpoints match the paper.
	if rows[0].Country != "South Africa" || rows[4].Country != "CA, USA" {
		t.Fatalf("order: %s ... %s", rows[0].Country, rows[4].Country)
	}
	paper := map[string][3]float64{
		"South Africa": {6.26, 9.77, 222.04},
		"China":        {7.64, 7.77, 286.32},
		"Japan":        {9.68, 7.76, 239.38},
		"Brazil":       {9.75, 8.82, 235.05},
		"CA, USA":      {10.63, 14.87, 215.16},
	}
	for _, r := range rows {
		want := paper[r.Country]
		if math.Abs(r.DownMbps-want[0])/want[0] > 0.2 {
			t.Errorf("%s down %.2f vs paper %.2f", r.Country, r.DownMbps, want[0])
		}
		if math.Abs(r.LatencyMS-want[2])/want[2] > 0.2 {
			t.Errorf("%s rtt %.1f vs paper %.1f", r.Country, r.LatencyMS, want[2])
		}
	}
	if !strings.Contains(FormatTable2(rows), "Johannesburg") {
		t.Fatal("format")
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6VPNEnergy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 locations × 2 browsers
		t.Fatalf("rows = %d", len(rows))
	}
	f := SummarizeFig6(rows)
	// Claim 2: Chrome dips at the Japanese exit.
	if f.ChromeJapanDipPct >= 0 {
		t.Fatalf("Chrome Japan dip = %+.1f%%, want negative", f.ChromeJapanDipPct)
	}
	// Brave stays within noise everywhere; per-location Brave means
	// should all be within ~8%% of each other.
	var braveMin, braveMax float64
	first := true
	for _, r := range rows {
		if r.Browser != "Brave" {
			continue
		}
		if first || r.Energy.Mean < braveMin {
			braveMin = r.Energy.Mean
		}
		if first || r.Energy.Mean > braveMax {
			braveMax = r.Energy.Mean
		}
		first = false
	}
	if (braveMax-braveMin)/braveMax > 0.10 {
		t.Fatalf("Brave spread across locations = %.1f%%, want small",
			100*(braveMax-braveMin)/braveMax)
	}
	if !strings.Contains(FormatFig6(rows), "Bunkyo") {
		t.Fatal("format")
	}
}

func TestSysPerfShapes(t *testing.T) {
	rep, err := SysPerf(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Controller CPU extra ≈ +50 points on average.
	if rep.CtlCPUExtraAvg < 30 || rep.CtlCPUExtraAvg > 65 {
		t.Fatalf("ctl CPU extra = %.1f, want ~50", rep.CtlCPUExtraAvg)
	}
	// Memory: +≈6 %, total < 20 %.
	if rep.MemExtraPct < 3 || rep.MemExtraPct > 9 {
		t.Fatalf("mem extra = %.1f%%, want ~6", rep.MemExtraPct)
	}
	if rep.MemTotalPct >= 20 {
		t.Fatalf("mem total = %.1f%%, want < 20", rep.MemTotalPct)
	}
	// Upload below the bitrate bound, and a substantial fraction of it.
	if rep.UploadMB <= 0 || rep.UploadMB > rep.UploadBoundMB {
		t.Fatalf("upload %.1f MB vs bound %.1f MB", rep.UploadMB, rep.UploadBoundMB)
	}
	if rep.UploadMB < 0.3*rep.UploadBoundMB {
		t.Fatalf("upload %.1f MB too far below bound %.1f MB", rep.UploadMB, rep.UploadBoundMB)
	}
	// Latency 1.44 ± 0.12 s.
	if math.Abs(rep.LatencyMean-1.44) > 0.15 {
		t.Fatalf("latency mean = %.2f, want ~1.44", rep.LatencyMean)
	}
	if rep.LatencyTrials != 40 {
		t.Fatalf("trials = %d", rep.LatencyTrials)
	}
	if !strings.Contains(FormatSysPerf(rep), "latency") {
		t.Fatal("format")
	}
}

func TestAblationRelayOverhead(t *testing.T) {
	rep, err := AblationRelayOverhead(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DeltaPct) > 3 {
		t.Fatalf("relay delta = %.2f%%, want < 3%%", rep.DeltaPct)
	}
	if !strings.Contains(FormatRelayOverhead(rep), "KS distance") {
		t.Fatal("format")
	}
}

func TestAblationBitrate(t *testing.T) {
	rows, err := AblationBitrate(testOpts(), []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher cap → more upload.
	if rows[1].UploadMB <= rows[0].UploadMB {
		t.Fatalf("upload should grow with cap: %+v", rows)
	}
	if !strings.Contains(FormatBitrate(rows), "cap (Mbps)") {
		t.Fatal("format")
	}
}

func TestAblationSampleRate(t *testing.T) {
	rows, err := AblationSampleRate(testOpts(), []int{50, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ErrorPct > 2.0 {
			t.Fatalf("rate %d error = %.2f%%, want small", r.RateHz, r.ErrorPct)
		}
	}
	// More samples at higher rates.
	if rows[1].SampleCount <= rows[0].SampleCount {
		t.Fatalf("sample counts: %+v", rows)
	}
	if !strings.Contains(FormatSampleRate(rows), "5 kHz") {
		t.Fatal("format")
	}
}

func TestAblationAutomation(t *testing.T) {
	rows, err := AblationAutomation(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AutomationRow{}
	for _, r := range rows {
		byName[r.Channel] = r
	}
	// USB: heavily distorted. WiFi and BT: faithful.
	if byName["adb-usb"].DistortionPct < 50 {
		t.Fatalf("USB distortion = %.1f%%, want large", byName["adb-usb"].DistortionPct)
	}
	for _, ch := range []string{"adb-wifi", "bt-keyboard"} {
		if byName[ch].DistortionPct > 8 {
			t.Fatalf("%s distortion = %.1f%%, want small", ch, byName[ch].DistortionPct)
		}
	}
	if byName["bt-keyboard"].SupportsMirror {
		t.Fatal("BT keyboard cannot support mirroring")
	}
	if !strings.Contains(FormatAutomation(rows), "bt-keyboard") {
		t.Fatal("format")
	}
}

func TestAblationScheduler(t *testing.T) {
	rows, err := AblationScheduler(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	perDev, whole := rows[0], rows[1]
	// Per-device locking overlaps work across devices: shorter makespan
	// and shorter waits.
	if perDev.MakespanS >= whole.MakespanS {
		t.Fatalf("per-device makespan %.0f should beat whole-node %.0f",
			perDev.MakespanS, whole.MakespanS)
	}
	if perDev.AvgWaitS >= whole.AvgWaitS {
		t.Fatalf("per-device wait %.0f should beat whole-node %.0f",
			perDev.AvgWaitS, whole.AvgWaitS)
	}
	if !strings.Contains(FormatScheduler(rows), "per-device-lock") {
		t.Fatal("format")
	}
}

func TestEnvBrowserLookup(t *testing.T) {
	env, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Browser("Brave"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Browser("Netscape"); err == nil {
		t.Fatal("unknown browser found")
	}
	if len(BrowserNames()) != 4 {
		t.Fatal("browser names")
	}
}
