package experiments

import (
	"context"
	"fmt"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/core"
	"batterylab/internal/stats"
	"batterylab/internal/vpn"
)

// Table2Rows reproduces Table 2 (§4.3): speedtest statistics through the
// five ProtonVPN exits, sorted by download bandwidth.
func Table2Rows(opts Options) ([]vpn.SpeedtestResult, error) {
	opts = opts.withDefaults()
	env, err := NewEnv(opts.Seed)
	if err != nil {
		return nil, err
	}
	return env.Ctl.VPN().Table2()
}

// Fig6Row is one bar of Figure 6: a browser's average discharge (mAh,
// with stddev) through one VPN exit.
type Fig6Row struct {
	Location string
	Country  string
	Browser  string
	Energy   stats.Summary
}

// Fig6VPNEnergy reproduces Figure 6 (§4.3): Brave and Chrome energy
// through each VPN location. Expected shape: location differences stay
// within the error bars, except Chrome at the Japanese exit, which dips
// because its ad payloads shrink ~20 % there.
func Fig6VPNEnergy(opts Options) ([]Fig6Row, error) {
	opts = opts.withDefaults()
	var rows []Fig6Row
	i := 0
	for _, exit := range vpn.Exits() {
		for _, name := range []string{"Brave", "Chrome"} {
			env, err := NewEnv(opts.Seed + uint64(i)*3301)
			i++
			if err != nil {
				return nil, err
			}
			prof, err := browser.FindProfile(name)
			if err != nil {
				return nil, err
			}
			var energies []float64
			for rep := 0; rep < opts.Repetitions; rep++ {
				res, err := env.Plat.RunExperiment(context.Background(), core.ExperimentSpec{
					Node: "node1", Device: env.Serial,
					SampleRate:  opts.SampleRate,
					VPNLocation: exit.Location,
					Workload: func(drv automation.Driver) *automation.Script {
						return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
					},
				})
				if err != nil {
					return nil, fmt.Errorf("fig6 %s@%s rep %d: %w", name, exit.Location, rep, err)
				}
				energies = append(energies, res.EnergyMAH)
			}
			rows = append(rows, Fig6Row{
				Location: exit.Location, Country: exit.Country,
				Browser: name, Energy: stats.Summarize(energies),
			})
		}
	}
	return rows, nil
}

// Fig6Findings summarizes the figure's two claims.
type Fig6Findings struct {
	// MaxBraveSpreadSigma is the largest |location mean - overall mean|
	// for Brave, in units of the per-location stddev: ≲ 1-2 means
	// "variation stays within standard deviation bounds".
	MaxBraveSpreadSigma float64
	// ChromeJapanDipPct is Chrome's Japan energy relative to its mean
	// across the other locations, in percent (negative = dip).
	ChromeJapanDipPct float64
}

// SummarizeFig6 derives the findings.
func SummarizeFig6(rows []Fig6Row) Fig6Findings {
	var braveMeans, braveStds []float64
	var chromeOther []float64
	var chromeJapan float64
	for _, r := range rows {
		switch r.Browser {
		case "Brave":
			braveMeans = append(braveMeans, r.Energy.Mean)
			braveStds = append(braveStds, r.Energy.Std)
		case "Chrome":
			if r.Country == "Japan" {
				chromeJapan = r.Energy.Mean
			} else {
				chromeOther = append(chromeOther, r.Energy.Mean)
			}
		}
	}
	var f Fig6Findings
	overall := stats.Mean(braveMeans)
	for i, m := range braveMeans {
		sigma := braveStds[i]
		if sigma == 0 {
			continue
		}
		dev := m - overall
		if dev < 0 {
			dev = -dev
		}
		if s := dev / sigma; s > f.MaxBraveSpreadSigma {
			f.MaxBraveSpreadSigma = s
		}
	}
	otherMean := stats.Mean(chromeOther)
	if otherMean > 0 {
		f.ChromeJapanDipPct = 100 * (chromeJapan - otherMean) / otherMean
	}
	return f
}
