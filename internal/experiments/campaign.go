package experiments

import (
	"context"
	"fmt"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/controller"
	"batterylab/internal/core"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

// MultiEnv is a federation of several single-device vantage points on
// one virtual clock — the substrate for campaign sweeps.
type MultiEnv struct {
	Clk     *simclock.Virtual
	Plat    *core.Platform
	Ctls    []*controller.Controller
	Serials []string
}

// NewMultiEnv builds a platform joined by n vantage points ("node1"…),
// each hosting one device with the study browsers installed.
func NewMultiEnv(seed uint64, n int) (*MultiEnv, error) {
	clk := simclock.NewVirtual()
	plat, err := core.NewPlatform(clk, seed)
	if err != nil {
		return nil, err
	}
	env := &MultiEnv{Clk: clk, Plat: plat}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i+1)
		ctl, err := controller.New(clk, controller.Config{Name: name, Seed: seed + uint64(i)*131})
		if err != nil {
			return nil, err
		}
		dev, err := device.New(clk, device.Config{
			Seed:   seed + uint64(i)*151,
			Serial: fmt.Sprintf("DEV%s", name),
		})
		if err != nil {
			return nil, err
		}
		if err := ctl.AttachDevice(dev); err != nil {
			return nil, err
		}
		for _, prof := range browser.Profiles() {
			b := browser.New(prof, ctl.AP(), func() string { return ctl.Region() })
			if err := dev.Install(b); err != nil {
				return nil, err
			}
		}
		if _, err := plat.Join(ctl, fmt.Sprintf("198.51.100.%d:2222", 10+i)); err != nil {
			return nil, err
		}
		env.Ctls = append(env.Ctls, ctl)
		env.Serials = append(env.Serials, dev.Serial())
	}
	return env, nil
}

// CampaignRow is one run of the campaign sweep.
type CampaignRow struct {
	Node      string
	Browser   string
	EnergyMAH float64
	Err       string
}

// CampaignReport aggregates the sweep: per-run energies plus the
// concurrency win (simulated makespan vs the sum of run durations a
// sequential for-loop would have paid).
type CampaignReport struct {
	Rows          []CampaignRow
	Makespan      time.Duration
	SequentialSum time.Duration
}

// CampaignSweep runs runsPerNode browser workloads on each of nodes
// vantage points as one concurrent campaign — the platform-scale usage
// the session/campaign API exists for. Runs on distinct nodes overlap in
// simulated time; each node's runs stay serialized on its Monsoon.
func CampaignSweep(opts Options, nodes, runsPerNode int) (*CampaignReport, error) {
	opts = opts.withDefaults()
	if nodes <= 0 {
		nodes = 2
	}
	if runsPerNode <= 0 {
		runsPerNode = 3
	}
	env, err := NewMultiEnv(opts.Seed, nodes)
	if err != nil {
		return nil, err
	}
	names := BrowserNames()
	var specs []core.ExperimentSpec
	var labels []CampaignRow
	for r := 0; r < runsPerNode; r++ {
		for n := 0; n < nodes; n++ {
			prof, err := browser.FindProfile(names[r%len(names)])
			if err != nil {
				return nil, err
			}
			specs = append(specs, core.ExperimentSpec{
				Node: env.Ctls[n].Name(), Device: env.Serials[n],
				SampleRate: opts.SampleRate,
				Workload: func(drv automation.Driver) *automation.Script {
					return browser.BuildWorkload(drv, prof.Package, opts.browserWorkloadOpts())
				},
			})
			labels = append(labels, CampaignRow{Node: env.Ctls[n].Name(), Browser: prof.Name})
		}
	}
	start := env.Clk.Now()
	runs, err := env.Plat.RunCampaign(context.Background(), core.Campaign{Specs: specs})
	if err != nil {
		return nil, err
	}
	rep := &CampaignReport{Makespan: env.Clk.Now().Sub(start)}
	for i, run := range runs {
		row := labels[i]
		if run.Err != nil {
			row.Err = run.Err.Error()
		} else {
			row.EnergyMAH = run.Result.EnergyMAH
			rep.SequentialSum += run.Result.Duration
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
