package gpio

import "testing"

func TestConfigureAndWrite(t *testing.T) {
	b := NewBank(4)
	if err := b.Configure(0, Output); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0, High); err != nil {
		t.Fatal(err)
	}
	lv, err := b.Read(0)
	if err != nil || lv != High {
		t.Fatalf("Read = %v, %v", lv, err)
	}
}

func TestWriteUnconfigured(t *testing.T) {
	b := NewBank(2)
	if err := b.Write(0, High); err == nil {
		t.Fatal("write to unconfigured pin accepted")
	}
}

func TestWriteInputPin(t *testing.T) {
	b := NewBank(2)
	b.Configure(0, Input)
	if err := b.Write(0, High); err == nil {
		t.Fatal("write to input pin accepted")
	}
}

func TestReadUnconfigured(t *testing.T) {
	b := NewBank(2)
	if _, err := b.Read(1); err == nil {
		t.Fatal("read of unconfigured pin accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	b := NewBank(2)
	if err := b.Configure(5, Output); err == nil {
		t.Fatal("out-of-range configure accepted")
	}
	if err := b.Configure(-1, Output); err == nil {
		t.Fatal("negative pin accepted")
	}
	if _, err := b.Read(2); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestSetInput(t *testing.T) {
	b := NewBank(2)
	b.Configure(1, Input)
	if err := b.SetInput(1, High); err != nil {
		t.Fatal(err)
	}
	lv, _ := b.Read(1)
	if lv != High {
		t.Fatal("input level not visible")
	}
	b.Configure(0, Output)
	if err := b.SetInput(0, High); err == nil {
		t.Fatal("SetInput on output pin accepted")
	}
}

func TestWatcherFiresOnChange(t *testing.T) {
	b := NewBank(1)
	b.Configure(0, Output)
	var events []Level
	b.Watch(0, func(l Level) { events = append(events, l) })
	b.Write(0, High)
	b.Write(0, High) // no change, no event
	b.Write(0, Low)
	if len(events) != 2 || events[0] != High || events[1] != Low {
		t.Fatalf("events = %v", events)
	}
}

func TestReconfigureResetsLevel(t *testing.T) {
	b := NewBank(1)
	b.Configure(0, Output)
	b.Write(0, High)
	b.Configure(0, Output)
	lv, _ := b.Read(0)
	if lv != Low {
		t.Fatal("reconfigure did not reset level")
	}
}

func TestInvalidDirection(t *testing.T) {
	b := NewBank(1)
	if err := b.Configure(0, Unconfigured); err == nil {
		t.Fatal("configuring to Unconfigured accepted")
	}
}

func TestStrings(t *testing.T) {
	if High.String() != "high" || Low.String() != "low" {
		t.Fatal("Level strings")
	}
	if Input.String() != "in" || Output.String() != "out" || Unconfigured.String() != "unconfigured" {
		t.Fatal("Direction strings")
	}
}
