// Package gpio models the controller's General-Purpose I/O header — the
// interface through which the BatteryLab controller drives the relay-based
// circuit switch. Pins have a direction and a level; output writes can be
// observed by registered watchers (the relay coils).
package gpio

import (
	"fmt"
	"sync"
)

// Level is a digital pin level.
type Level bool

// Pin levels.
const (
	Low  Level = false
	High Level = true
)

func (l Level) String() string {
	if l == High {
		return "high"
	}
	return "low"
}

// Direction is a pin's configured direction.
type Direction int

// Pin directions.
const (
	Unconfigured Direction = iota
	Input
	Output
)

func (d Direction) String() string {
	switch d {
	case Input:
		return "in"
	case Output:
		return "out"
	default:
		return "unconfigured"
	}
}

// Bank is a set of numbered GPIO pins (the Pi 3B+ header exposes 26
// usable ones).
type Bank struct {
	mu   sync.Mutex
	pins []pin
}

type pin struct {
	dir      Direction
	level    Level
	watchers []func(Level)
}

// NewBank returns a bank with n unconfigured pins.
func NewBank(n int) *Bank {
	return &Bank{pins: make([]pin, n)}
}

// Pins reports the number of pins in the bank.
func (b *Bank) Pins() int { return len(b.pins) }

func (b *Bank) check(n int) error {
	if n < 0 || n >= len(b.pins) {
		return fmt.Errorf("gpio: pin %d out of range [0,%d)", n, len(b.pins))
	}
	return nil
}

// Configure sets a pin's direction. Reconfiguring is allowed (Linux
// sysfs semantics); it resets the level to Low.
func (b *Bank) Configure(n int, dir Direction) error {
	if err := b.check(n); err != nil {
		return err
	}
	if dir != Input && dir != Output {
		return fmt.Errorf("gpio: invalid direction %v", dir)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pins[n].dir = dir
	b.pins[n].level = Low
	return nil
}

// Write drives an output pin and notifies watchers. Writing an input or
// unconfigured pin is an error.
func (b *Bank) Write(n int, level Level) error {
	if err := b.check(n); err != nil {
		return err
	}
	b.mu.Lock()
	if b.pins[n].dir != Output {
		b.mu.Unlock()
		return fmt.Errorf("gpio: write to non-output pin %d (%v)", n, b.pins[n].dir)
	}
	changed := b.pins[n].level != level
	b.pins[n].level = level
	watchers := append([]func(Level){}, b.pins[n].watchers...)
	b.mu.Unlock()
	if changed {
		for _, w := range watchers {
			w(level)
		}
	}
	return nil
}

// Read reports a configured pin's level.
func (b *Bank) Read(n int) (Level, error) {
	if err := b.check(n); err != nil {
		return Low, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pins[n].dir == Unconfigured {
		return Low, fmt.Errorf("gpio: read of unconfigured pin %d", n)
	}
	return b.pins[n].level, nil
}

// SetInput drives an input pin externally (a sensor or switch on the
// header), visible to subsequent Reads.
func (b *Bank) SetInput(n int, level Level) error {
	if err := b.check(n); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pins[n].dir != Input {
		return fmt.Errorf("gpio: SetInput on non-input pin %d", n)
	}
	b.pins[n].level = level
	return nil
}

// Watch registers f to run on every level change of output pin n. The
// callback runs synchronously on the writer's goroutine.
func (b *Bank) Watch(n int, f func(Level)) error {
	if err := b.check(n); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pins[n].watchers = append(b.pins[n].watchers, f)
	return nil
}
