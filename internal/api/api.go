// Package api defines the wire-level v1 types of BatteryLab's remote
// execution API: the declarative experiment/campaign specs a client
// submits over HTTP, the typed error envelope every non-2xx response
// carries, and the event/sample records the streaming endpoints emit.
// The package is deliberately a leaf — JSON structs and small helpers
// only — so the server (internal/accessserver, internal/core) and the
// client (internal/remote) share one schema without import cycles.
//
// # Spec JSON schema (v1)
//
// An ExperimentSpec is the declarative replacement for the in-process
// closure jobs of the original API: instead of shipping Go code, a
// client names a workload from the server's registry and parameterizes
// it. The canonical JSON shape:
//
//	{
//	  "node":     "node1",             // required: target vantage point
//	  "device":   "R58M12ABCDE",       // required: target device serial
//	  "workload": {                    // required: registry name + params
//	    "name":   "browser",
//	    "params": {"browser": "Brave", "pages": 3, "scrolls": 6}
//	  },
//	  "monitor": {                     // optional monitor configuration
//	    "sample_rate_hz":       1000,  // 0 = hardware max (5 kHz)
//	    "voltage_v":            0,     // 0 = battery nominal voltage
//	    "cpu_sample_period_ms": 1000,  // live-sample cadence (0 = 1 s)
//	    "padding_ms":           1000   // settle tail (0 = 1 s)
//	  },
//	  "mirroring":    false,           // §3.2 device mirroring
//	  "vpn_location": "",              // §4.3 VPN exit ("" = direct)
//	  "transport":    "wifi",          // "wifi" (default) | "bluetooth"
//	  "constraints":  {"require_low_cpu": false}
//	}
//
// A CampaignSpec is a batch of experiments submitted atomically; the
// server fans the runs out across vantage points through its scheduler
// (per-node/device locks serialize conflicting runs):
//
//	{
//	  "experiments":    [ <ExperimentSpec>, ... ],  // required, ≥ 1
//	  "max_concurrent": 0                           // 0 = no extra cap
//	}
//
// The builtin workload registry ships "browser" (params: browser,
// pages, scrolls, dwell_ms, scroll_gap_ms), "video" (params:
// duration_ms) and "idle" (params: duration_ms); GET /api/v1/workloads
// lists what a server actually offers.
package api

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Version is the wire protocol version this package speaks. Breaking
// schema changes bump it and mount under a new /api/v{n}/ prefix;
// additive changes (new optional fields, new endpoints) do not.
const Version = 1

// Transport strings accepted on the wire. The empty string selects
// WiFi, the paper's measurement-safe default.
const (
	TransportWiFi      = "wifi"
	TransportBluetooth = "bluetooth"
	TransportUSB       = "usb" // always rejected, with an explanatory error
)

// Params carries a workload's free-form parameters. JSON numbers decode
// as float64; the typed getters below tolerate that, so workload
// builders never touch the raw map.
type Params map[string]any

// String returns the string at key, or def when absent or not a string.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// Int returns the integer at key, accepting JSON's float64 form, or def.
func (p Params) Int(key string, def int) int {
	switch v := p[key].(type) {
	case float64:
		return int(v)
	case int:
		return v
	}
	return def
}

// Float returns the number at key, or def.
func (p Params) Float(key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	return def
}

// Bool returns the bool at key, or def.
func (p Params) Bool(key string, def bool) bool {
	if v, ok := p[key].(bool); ok {
		return v
	}
	return def
}

// DurationMS interprets the number at key as milliseconds, or def.
func (p Params) DurationMS(key string, def time.Duration) time.Duration {
	switch v := p[key].(type) {
	case float64:
		return time.Duration(v) * time.Millisecond
	case int:
		return time.Duration(v) * time.Millisecond
	}
	return def
}

// StringSlice returns the string list at key (JSON arrays decode as
// []any), or nil when absent or mistyped.
func (p Params) StringSlice(key string) []string {
	raw, ok := p[key].([]any)
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		s, ok := e.(string)
		if !ok {
			return nil
		}
		out = append(out, s)
	}
	return out
}

// WorkloadSpec names a workload from the server's registry and carries
// its parameters. The registry replaces closure pipelines: every
// runnable workload is vetted code on the server, so declarative
// submissions skip the §3.1 admin pipeline-approval gate that guarded
// arbitrary Go closures.
type WorkloadSpec struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
}

// MonitorSpec configures the power monitor and the run's sampling
// cadences. Zero values select the server-side defaults documented on
// each field.
type MonitorSpec struct {
	// SampleRateHz is the Monsoon sampling rate (0 = hardware max).
	SampleRateHz int `json:"sample_rate_hz,omitempty"`
	// VoltageV is the monitor output voltage (0 = battery nominal).
	VoltageV float64 `json:"voltage_v,omitempty"`
	// CPUSamplePeriodMS is the live-sample/CPU-monitor cadence (0 = 1 s).
	CPUSamplePeriodMS int64 `json:"cpu_sample_period_ms,omitempty"`
	// PaddingMS holds the monitor running after the script (0 = 1 s).
	PaddingMS int64 `json:"padding_ms,omitempty"`
}

// ConstraintsSpec carries scheduler constraints beyond the implicit
// per-node/device locks.
type ConstraintsSpec struct {
	// RequireLowCPU defers dispatch until the controller CPU is below
	// the server's threshold (§4.2's optional condition).
	RequireLowCPU bool `json:"require_low_cpu,omitempty"`
	// AllowFallback lets the scheduler move the run to another online
	// vantage point (and one of its devices) when the named node is
	// dead, draining or removed — the campaign-survives-a-node-kill
	// policy. Off by default: measurements are usually pinned to the
	// exact device they were calibrated for.
	AllowFallback bool `json:"allow_fallback,omitempty"`
}

// ExperimentSpec is the declarative wire form of one measurement run.
// See the package comment for the JSON schema.
type ExperimentSpec struct {
	Node        string          `json:"node"`
	Device      string          `json:"device"`
	Workload    WorkloadSpec    `json:"workload"`
	Monitor     MonitorSpec     `json:"monitor,omitempty"`
	Mirroring   bool            `json:"mirroring,omitempty"`
	VPNLocation string          `json:"vpn_location,omitempty"`
	Transport   string          `json:"transport,omitempty"`
	Constraints ConstraintsSpec `json:"constraints,omitempty"`
	// HomeServer names the cluster peer submitting this spec through
	// the cross-server routing path (empty for direct client
	// submissions). The executing server echoes it on the build's wire
	// status as provenance.
	HomeServer string `json:"home_server,omitempty"`
}

// Validate checks the wire-level invariants that need no server state.
// Registry lookups and node/device existence are the server's job.
func (s *ExperimentSpec) Validate() error {
	if s.Node == "" {
		return errors.New("api: spec.node is required")
	}
	if s.Device == "" {
		return errors.New("api: spec.device is required")
	}
	if s.Workload.Name == "" {
		return errors.New("api: spec.workload.name is required")
	}
	switch s.Transport {
	case "", TransportWiFi, TransportBluetooth, TransportUSB:
	default:
		return fmt.Errorf("api: unknown transport %q (want %q or %q)",
			s.Transport, TransportWiFi, TransportBluetooth)
	}
	if s.Monitor.SampleRateHz < 0 {
		return fmt.Errorf("api: negative sample rate %d", s.Monitor.SampleRateHz)
	}
	if s.Monitor.VoltageV < 0 {
		return fmt.Errorf("api: negative voltage %v", s.Monitor.VoltageV)
	}
	if s.Monitor.CPUSamplePeriodMS < 0 || s.Monitor.PaddingMS < 0 {
		return errors.New("api: negative durations in monitor spec")
	}
	return nil
}

// CampaignSpec is the wire form of a measurement campaign: a batch of
// experiments scheduled together.
type CampaignSpec struct {
	Experiments []ExperimentSpec `json:"experiments"`
	// MaxConcurrent caps in-flight runs across the campaign (0 = only
	// the server's executor and per-node limits apply).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
}

// Validate checks the campaign's wire-level invariants, including every
// member experiment's.
func (c *CampaignSpec) Validate() error {
	if len(c.Experiments) == 0 {
		return errors.New("api: campaign needs at least one experiment")
	}
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("api: negative max_concurrent %d", c.MaxConcurrent)
	}
	for i := range c.Experiments {
		if err := c.Experiments[i].Validate(); err != nil {
			return fmt.Errorf("experiments[%d]: %w", i, err)
		}
	}
	return nil
}

// SubmitResponse acknowledges an experiment submission.
type SubmitResponse struct {
	Build int    `json:"build"`
	State string `json:"state"`
}

// CampaignResponse acknowledges a campaign submission. Builds is
// index-aligned with the submitted experiments.
type CampaignResponse struct {
	Campaign int   `json:"campaign"`
	Builds   []int `json:"builds"`
}

// CampaignStatus reports a campaign's member builds.
type CampaignStatus struct {
	Campaign int           `json:"campaign"`
	Builds   []BuildStatus `json:"builds"`
}

// NodeInfo describes one vantage point and its test devices.
type NodeInfo struct {
	Name    string   `json:"name"`
	Devices []string `json:"devices,omitempty"`
	// Health is the node's lifecycle state: "online", "suspect",
	// "offline" or "draining" (empty from pre-health servers).
	Health string `json:"health,omitempty"`
}

// Node health strings on the wire.
const (
	HealthOnline   = "online"
	HealthSuspect  = "suspect"
	HealthOffline  = "offline"
	HealthDraining = "draining"
)

// NodeDetail is one vantage point's full lifecycle snapshot
// (GET /api/v1/nodes/{name}).
type NodeDetail struct {
	Name    string   `json:"name"`
	Devices []string `json:"devices,omitempty"`
	Health  string   `json:"health"`
	// Monitored reports whether heartbeat tracking is armed; an
	// unmonitored node is always treated as online.
	Monitored bool `json:"monitored,omitempty"`
	Draining  bool `json:"draining,omitempty"`
	// LastHeartbeatNS is the server-clock time of the latest beat.
	LastHeartbeatNS int64 `json:"last_heartbeat_ns,omitempty"`
	// RunningBuilds counts builds currently leased to the node;
	// QueuedBuilds counts queued builds preferring it.
	RunningBuilds int `json:"running_builds"`
	QueuedBuilds  int `json:"queued_builds"`
}

// RunSummary is the server-side digest of a finished measurement —
// enough for dashboards that never fetch the full trace. Timestamps and
// durations are nanoseconds for lossless round-trips.
type RunSummary struct {
	Samples            int64   `json:"samples"`
	MeanMA             float64 `json:"mean_ma"`
	P50MA              float64 `json:"p50_ma"`
	P95MA              float64 `json:"p95_ma"`
	EnergyMAH          float64 `json:"energy_mah"`
	DurationNS         int64   `json:"duration_ns"`
	MirrorUploadBytes  int64   `json:"mirror_upload_bytes,omitempty"`
	DroppedLiveSamples int64   `json:"dropped_live_samples,omitempty"`
}

// Analytics field names a client may request via the analytics route's
// fields= parameter. An empty selection means all of them.
const (
	AnalyticsFieldMean      = "mean"
	AnalyticsFieldMinMax    = "minmax"
	AnalyticsFieldQuantiles = "quantiles"
	AnalyticsFieldEnergy    = "energy"
)

// AnalyticsQuery selects what GET /api/v1/builds/{id}/analytics
// computes. The zero value asks for whole-trace rollups of every field
// over the build's power trace.
type AnalyticsQuery struct {
	// WindowNS is the bucket width in nanoseconds; 0 disables bucketing
	// (rollup only).
	WindowNS int64
	// Fields restricts the computed aggregates to a subset of the
	// AnalyticsField* names; empty means all.
	Fields []string
	// Artifact names the stored trace to aggregate; empty means the
	// build's power trace ("current.trace").
	Artifact string
}

// AnalyticsBucket is one time bucket (or the whole-trace rollup) of
// server-side aggregates over a stored trace. Aggregate fields are
// pointers so unrequested fields — and statistics of a bucket whose
// every sample was invalid — are absent rather than zero or NaN (JSON
// has no NaN). Quantiles are P² streaming estimates, exact for ≤ 5
// samples; see internal/samples for the error envelope beyond that.
// Energy integrates only within-bucket sample pairs, so bucket
// energies sum to slightly less than the rollup's exact whole-trace
// integral (boundary-straddling spans belong to neither bucket).
type AnalyticsBucket struct {
	// StartNS and EndNS bound the bucket, nanoseconds since the trace's
	// first sample (EndNS exclusive). The rollup row spans the whole
	// trace.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Samples counts valid samples in the bucket; NaNs counts skipped
	// invalid ones. Empty buckets are omitted from the result entirely.
	Samples   int64    `json:"samples"`
	NaNs      int64    `json:"nans,omitempty"`
	MeanMA    *float64 `json:"mean_ma,omitempty"`
	MinMA     *float64 `json:"min_ma,omitempty"`
	MaxMA     *float64 `json:"max_ma,omitempty"`
	P50MA     *float64 `json:"p50_ma,omitempty"`
	P95MA     *float64 `json:"p95_ma,omitempty"`
	EnergyMAH *float64 `json:"energy_mah,omitempty"`
}

// AnalyticsResult is the analytics route's response: the query echoed
// back in resolved form, a whole-trace rollup, and one bucket per
// non-empty window when bucketing was requested.
type AnalyticsResult struct {
	BuildID  int    `json:"build_id"`
	Artifact string `json:"artifact"`
	// EpochNS is the trace's first sample timestamp, unix nanoseconds;
	// bucket offsets are relative to it.
	EpochNS    int64 `json:"epoch_ns"`
	DurationNS int64 `json:"duration_ns"`
	// WindowNS echoes the bucket width (0 = rollup only).
	WindowNS int64 `json:"window_ns,omitempty"`
	// Fields echoes the computed aggregate set, sorted.
	Fields []string `json:"fields"`
	// Total is the whole-trace rollup. Its EnergyMAH is the exact
	// trapezoidal integral of the full trace (bit-identical to the
	// capture-time summary).
	Total AnalyticsBucket `json:"total"`
	// Buckets holds the non-empty windows in time order; nil without
	// bucketing.
	Buckets []AnalyticsBucket `json:"buckets,omitempty"`
}

// BuildStatus reports one build over the wire. Canceled marks builds
// ended by an explicit cancel request and NodeLost marks builds failed
// by vantage-point loss — clients branch on these flags (never on the
// error message) to map failures onto their typed errors. The state
// "expired" marks a build whose record aged out of the retention
// window; only ID and State are meaningful then.
type BuildStatus struct {
	ID       int         `json:"id"`
	Job      string      `json:"job"`
	Owner    string      `json:"owner,omitempty"`
	State    string      `json:"state"`
	Campaign int         `json:"campaign,omitempty"`
	Canceled bool        `json:"canceled,omitempty"`
	NodeLost bool        `json:"node_lost,omitempty"`
	Error    string      `json:"error,omitempty"`
	Summary  *RunSummary `json:"summary,omitempty"`
	// Node is where the current/last attempt ran — after a fallback
	// placement it differs from the submitted spec's node.
	Node string `json:"node,omitempty"`
	// Attempts counts dispatches (2+ means the build failed over).
	Attempts int `json:"attempts,omitempty"`
	// PendingReason explains why a queued build is not running yet.
	PendingReason string `json:"pending_reason,omitempty"`
	// PlacementScore is the scheduler's placer score for the
	// current/last placement — comparable across builds under one
	// scoring policy, useful for telling "best node" from "only node".
	PlacementScore float64 `json:"placement_score,omitempty"`
	// DroppedEvents and DroppedSamples count records the build's bounded
	// feed buffers shed under backpressure: a non-zero value tells a
	// streaming client its replay is lossy rather than letting it trust
	// a silently truncated stream.
	DroppedEvents  int64 `json:"dropped_events,omitempty"`
	DroppedSamples int64 `json:"dropped_samples,omitempty"`
	// Recovered marks state reconstructed from the server's WAL+snapshot
	// store after a restart: status fields are authoritative, but the
	// feed replay starts over (pre-crash events and samples are gone)
	// and a build that was mid-run at the crash went through a failover
	// requeue.
	Recovered bool `json:"recovered,omitempty"`
	// FeedEpoch counts how many times the build's event/sample feed
	// started over (once per server recovery). A streaming client that
	// sees the epoch move knows its resume cursors — and any client-side
	// aggregate built from the feed — belong to an abandoned attempt and
	// must reset, even across multiple restarts.
	FeedEpoch int `json:"feed_epoch,omitempty"`
	// RoutedVia names the federated peer this build was routed to: the
	// run executes on a vantage point owned by that peer, and events,
	// samples and the summary are relayed back. Empty for builds that
	// run on the serving server's own nodes.
	RoutedVia string `json:"routed_via,omitempty"`
	// HomeServer names the cluster peer that owns this build's record —
	// set on builds another server submitted here through the
	// cross-server routing path, so an operator reading this server's
	// build list can trace a routed run back to where it was submitted.
	HomeServer string `json:"home_server,omitempty"`
}

// StateExpired is the BuildStatus.State of a tombstoned build.
const StateExpired = "expired"

// EventFailover is the BuildEvent.Phase of a scheduler failover
// record: the build's node was lost and the build is being requeued
// (or failed, once the retry budget is spent). Error carries the
// reason. It is not an experiment phase; clients that only understand
// experiment phases skip it.
const EventFailover = "failover"

// BuildEvent is one phase-transition record on the NDJSON event stream
// (GET /api/v1/builds/{id}/events). Seq is a per-build cursor: a client
// that reconnects resumes from its last seen Seq + 1 via ?from=.
type BuildEvent struct {
	Seq    int    `json:"seq"`
	Build  int    `json:"build"`
	Node   string `json:"node"`
	Device string `json:"device"`
	Phase  string `json:"phase"`
	Step   string `json:"step,omitempty"`
	AtNS   int64  `json:"at_ns"`
	Error  string `json:"error,omitempty"`
}

// SamplePoint is one live power reading on the sample stream: the
// device's instantaneous draw plus the monitor-side streaming summary
// of the capture so far. The NDJSON form carries every field; the
// binary frame form (see stream.go) carries the (at_ns, current_ma)
// series through the compact trace codec.
type SamplePoint struct {
	AtNS      int64   `json:"at_ns"`
	CurrentMA float64 `json:"current_ma"`
	N         int64   `json:"n,omitempty"`
	MeanMA    float64 `json:"mean_ma,omitempty"`
	P50MA     float64 `json:"p50_ma,omitempty"`
	P95MA     float64 `json:"p95_ma,omitempty"`
	IntegralS float64 `json:"integral_s,omitempty"`
}

// PeerNode is one vantage point a federated peer advertises in its
// heartbeat census: enough for the receiving scheduler to treat it as a
// placement candidate without owning a handle to it.
type PeerNode struct {
	Name    string   `json:"name"`
	Health  string   `json:"health"`
	Devices []string `json:"devices,omitempty"`
	// Running counts builds currently leased to the node on its home
	// server — the queue-depth input to remote placement scoring.
	Running int `json:"running"`
}

// PeerAnnounce is the body of POST /api/v1/cluster/peers: one server
// announcing (or re-announcing — the same message is the heartbeat) its
// membership to another, carrying its current node census. Auth is the
// shared cluster token in the Authorization header, not a user token.
type PeerAnnounce struct {
	// Name is the announcing server's cluster-unique name.
	Name string `json:"name"`
	// URL is the base URL where the announcing server's v1 API is
	// reachable by its peers.
	URL string `json:"url"`
	// Nodes is the announcing server's current node census.
	Nodes []PeerNode `json:"nodes,omitempty"`
}

// PeerStatus is one peer's entry in the cluster view.
type PeerStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// State is the peer's heartbeat-derived lifecycle state: "online",
	// "suspect" or "offline" — the same model nodes use.
	State string `json:"state"`
	// LastHeartbeatNS is the receiving server's clock time of the last
	// announce from this peer.
	LastHeartbeatNS int64 `json:"last_heartbeat_ns,omitempty"`
	// Nodes is the census the peer advertised on its last heartbeat.
	Nodes []PeerNode `json:"nodes,omitempty"`
}

// ClusterView is GET /api/v1/cluster's response — and the body of an
// announce response, so a joining server learns the mesh (including
// peers it has never spoken to) from its first announce.
type ClusterView struct {
	// Self names the responding server.
	Self string `json:"self"`
	// URL is the responding server's advertised base URL.
	URL   string       `json:"url,omitempty"`
	Peers []PeerStatus `json:"peers,omitempty"`
}

// ErrorCode classifies a v1 API failure. Codes — not messages — are the
// contract clients branch on.
type ErrorCode string

// Error codes, each with a canonical HTTP status.
const (
	CodeBadRequest   ErrorCode = "bad_request"  // 400: malformed JSON, invalid spec
	CodeUnauthorized ErrorCode = "unauthorized" // 401: missing/unknown token
	CodeForbidden    ErrorCode = "forbidden"    // 403: role lacks the permission
	CodeNotFound     ErrorCode = "not_found"    // 404: unknown build/job/node/device
	CodeConflict     ErrorCode = "conflict"     // 409: duplicate job, unapproved revision
	CodeInternal     ErrorCode = "internal"     // 500: everything else
	// CodeInsufficientCredits is the §5 credit economy's rejection: the
	// member's ledger balance cannot cover the submission (402).
	CodeInsufficientCredits ErrorCode = "insufficient_credits"
	// CodeOverloaded is admission control's rejection (429): the owner
	// is over their in-flight cap, or the queue crossed the shed
	// watermark. The envelope's ShedReason says which.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInvalidCursor rejects a malformed ?from= resume cursor on the
	// streaming routes (400). Typed separately from bad_request so a
	// reconnecting client can tell "my cursor is garbage, restart from
	// 0" from "my request is malformed".
	CodeInvalidCursor ErrorCode = "invalid_cursor"
	// CodePeerUnavailable is a cross-server routing failure (503): the
	// submission targets a vantage point owned by a federated peer that
	// is currently suspect, offline or unreachable. Responses carry a
	// Retry-After header; the condition is transient by definition, so
	// client retry policy applies.
	CodePeerUnavailable ErrorCode = "peer_unavailable"
	// CodeNotRelayed is a feed gateway's typed refusal (501): the
	// requested v1 route exists on a full access server but is not one
	// the stateless gateway relays. Distinct from not_found so clients
	// know to re-aim at the control server rather than conclude the
	// resource is gone.
	CodeNotRelayed ErrorCode = "not_relayed"
)

// Error is the typed error envelope every non-2xx v1 response carries:
//
//	{"error": {"code": "not_found", "message": "no build 42"}}
//
// It implements error, so clients can return it directly; use Is/As or
// the Code field to branch.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// ShedReason qualifies CodeOverloaded rejections with the machine-
	// readable cause ("owner_cap" or "queue_watermark") so clients can
	// tell per-tenant throttling from fleet saturation.
	ShedReason string `json:"shed_reason,omitempty"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// HTTPStatus maps the code to its canonical HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeInvalidCursor:
		return http.StatusBadRequest
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeForbidden:
		return http.StatusForbidden
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeInsufficientCredits:
		return http.StatusPaymentRequired
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodePeerUnavailable:
		return http.StatusServiceUnavailable
	case CodeNotRelayed:
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// CodeForStatus inverts HTTPStatus for clients that receive a bare
// status with no parseable envelope.
func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusPaymentRequired:
		return CodeInsufficientCredits
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodePeerUnavailable
	case http.StatusNotImplemented:
		return CodeNotRelayed
	default:
		return CodeInternal
	}
}

// Envelope is the JSON wrapper error responses use.
type Envelope struct {
	Error *Error `json:"error"`
}
