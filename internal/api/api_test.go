package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	in := ExperimentSpec{
		Node:   "node1",
		Device: "SER123",
		Workload: WorkloadSpec{
			Name:   "browser",
			Params: Params{"browser": "Brave", "pages": 3},
		},
		Monitor:     MonitorSpec{SampleRateHz: 1000, CPUSamplePeriodMS: 500},
		Mirroring:   true,
		VPNLocation: "Bunkyo",
		Transport:   TransportBluetooth,
		Constraints: ConstraintsSpec{RequireLowCPU: true},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ExperimentSpec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Node != in.Node || out.Device != in.Device ||
		out.Workload.Name != "browser" ||
		out.Monitor.SampleRateHz != 1000 ||
		!out.Mirroring || out.VPNLocation != "Bunkyo" ||
		out.Transport != TransportBluetooth || !out.Constraints.RequireLowCPU {
		t.Fatalf("round trip mangled the spec: %+v", out)
	}
	// Params survive as JSON-generic values the getters understand.
	if got := out.Workload.Params.String("browser", ""); got != "Brave" {
		t.Fatalf("browser param = %q", got)
	}
	if got := out.Workload.Params.Int("pages", 0); got != 3 {
		t.Fatalf("pages param = %d", got)
	}
}

func TestParamsGetters(t *testing.T) {
	var decoded Params
	if err := json.Unmarshal([]byte(
		`{"s":"x","n":7,"f":2.5,"b":true,"ms":1500,"list":["a","b"],"badlist":[1]}`),
		&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.String("s", "d") != "x" || decoded.String("missing", "d") != "d" {
		t.Fatal("String getter")
	}
	if decoded.Int("n", 0) != 7 || decoded.Int("missing", 9) != 9 {
		t.Fatal("Int getter")
	}
	if decoded.Float("f", 0) != 2.5 {
		t.Fatal("Float getter")
	}
	if !decoded.Bool("b", false) || decoded.Bool("missing", true) != true {
		t.Fatal("Bool getter")
	}
	if decoded.DurationMS("ms", 0) != 1500*time.Millisecond {
		t.Fatal("DurationMS getter")
	}
	if got := decoded.StringSlice("list"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("StringSlice = %v", got)
	}
	if decoded.StringSlice("badlist") != nil {
		t.Fatal("mistyped list should be nil")
	}
}

func TestSpecValidate(t *testing.T) {
	valid := func() ExperimentSpec {
		return ExperimentSpec{
			Node: "n", Device: "d",
			Workload: WorkloadSpec{Name: "idle"},
		}
	}
	cases := []struct {
		name   string
		mutate func(*ExperimentSpec)
		ok     bool
	}{
		{"valid", func(s *ExperimentSpec) {}, true},
		{"valid bluetooth", func(s *ExperimentSpec) { s.Transport = TransportBluetooth }, true},
		{"usb passes wire validation", func(s *ExperimentSpec) { s.Transport = TransportUSB }, true},
		{"no node", func(s *ExperimentSpec) { s.Node = "" }, false},
		{"no device", func(s *ExperimentSpec) { s.Device = "" }, false},
		{"no workload", func(s *ExperimentSpec) { s.Workload.Name = "" }, false},
		{"bad transport", func(s *ExperimentSpec) { s.Transport = "carrier-pigeon" }, false},
		{"negative rate", func(s *ExperimentSpec) { s.Monitor.SampleRateHz = -1 }, false},
		{"negative voltage", func(s *ExperimentSpec) { s.Monitor.VoltageV = -1 }, false},
		{"negative padding", func(s *ExperimentSpec) { s.Monitor.PaddingMS = -1 }, false},
	}
	for _, c := range cases {
		s := valid()
		c.mutate(&s)
		if err := s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}

	if err := (&CampaignSpec{}).Validate(); err == nil {
		t.Error("empty campaign validated")
	}
	bad := CampaignSpec{Experiments: []ExperimentSpec{{}}}
	if err := bad.Validate(); err == nil {
		t.Error("campaign with invalid member validated")
	}
	good := CampaignSpec{Experiments: []ExperimentSpec{valid()}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	codes := map[ErrorCode]int{
		CodeBadRequest:   http.StatusBadRequest,
		CodeUnauthorized: http.StatusUnauthorized,
		CodeForbidden:    http.StatusForbidden,
		CodeNotFound:     http.StatusNotFound,
		CodeConflict:     http.StatusConflict,
		CodeInternal:     http.StatusInternalServerError,
	}
	for code, status := range codes {
		e := &Error{Code: code, Message: "m"}
		if got := e.HTTPStatus(); got != status {
			t.Errorf("%s → %d, want %d", code, got, status)
		}
		if got := CodeForStatus(status); got != code {
			t.Errorf("%d → %s, want %s", status, got, code)
		}
	}
	// The envelope is the wire shape clients decode.
	data, _ := json.Marshal(Envelope{Error: &Error{Code: CodeNotFound, Message: "no build 9"}})
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil ||
		env.Error.Code != CodeNotFound || env.Error.Message != "no build 9" {
		t.Fatalf("envelope round trip: %s → %+v (%v)", data, env, err)
	}
}

func TestSampleFrameRoundTrip(t *testing.T) {
	base := time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC).UnixNano()
	var all []SamplePoint
	var buf bytes.Buffer
	// Three frames of varying sizes, like a streaming handler flushing
	// whatever arrived since the last wake-up.
	for _, n := range []int{1, 100, 4097} {
		batch := make([]SamplePoint, n)
		for i := range batch {
			batch[i] = SamplePoint{
				AtNS:      base + int64(len(all)+i)*1e6,
				CurrentMA: 100 + float64(len(all)+i)*0.25,
			}
		}
		if err := WriteSampleFrame(&buf, batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	// Empty batches write nothing.
	if err := WriteSampleFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(&buf)
	var got []SamplePoint
	for {
		pts, err := ReadSampleFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pts...)
	}
	if len(got) != len(all) {
		t.Fatalf("decoded %d points, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i].AtNS != all[i].AtNS || got[i].CurrentMA != all[i].CurrentMA {
			t.Fatalf("point %d: got %+v want %+v", i, got[i], all[i])
		}
	}
}

func TestReadSampleFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSampleFrame(&buf, []SamplePoint{{AtNS: 1, CurrentMA: 2}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := ReadSampleFrame(bufio.NewReader(bytes.NewReader(whole[:len(whole)-1]))); err == nil {
		t.Fatal("truncated frame decoded")
	}
}
