package api

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"batterylab/internal/trace"
)

// Sample streaming wire formats.
//
// GET /api/v1/builds/{id}/samples streams live power samples in one of
// two encodings, selected by ?format=:
//
//   - "binary" (the default): a sequence of length-prefixed frames,
//     each a uvarint byte count followed by one complete binary trace
//     (the v2 delta/XOR codec of internal/trace) holding the samples
//     that arrived since the previous frame. Framing keeps the codec's
//     self-contained header/count layout intact while letting the
//     server flush incrementally; a reader decodes frame-by-frame with
//     ReadSampleFrame.
//   - "ndjson": one SamplePoint JSON object per line, carrying the
//     live monitor-side summary fields the binary form omits.

// SampleStreamSeriesName is the series name sample frames carry.
const SampleStreamSeriesName = "live"

// SampleStreamUnit is the unit sample frames carry.
const SampleStreamUnit = "mA"

// WriteSampleFrame encodes points as one length-prefixed binary trace
// frame. Empty batches write nothing.
func WriteSampleFrame(w io.Writer, points []SamplePoint) error {
	if len(points) == 0 {
		return nil
	}
	s := trace.NewSeries(SampleStreamSeriesName, SampleStreamUnit)
	for _, p := range points {
		if err := s.Append(time.Unix(0, p.AtNS), p.CurrentMA); err != nil {
			return fmt.Errorf("api: framing sample at %d: %w", p.AtNS, err)
		}
	}
	var body bytes.Buffer
	if err := s.WriteBinary(&body); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(body.Len()))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// ReadSampleFrame decodes the next frame from the stream, returning the
// points it carried. io.EOF at a frame boundary signals a clean end of
// stream.
func ReadSampleFrame(br *bufio.Reader) ([]SamplePoint, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("api: reading frame length: %w", err)
	}
	if size > 64<<20 {
		return nil, fmt.Errorf("api: sample frame of %d bytes exceeds the 64 MiB bound", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("api: reading %d-byte frame: %w", size, err)
	}
	s, err := trace.ReadBinary(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: decoding sample frame: %w", err)
	}
	points := make([]SamplePoint, 0, s.Len())
	s.Iter(func(smp trace.Sample) bool {
		points = append(points, SamplePoint{AtNS: smp.T.UnixNano(), CurrentMA: smp.V})
		return true
	})
	return points, nil
}
