// Package bluetooth models the controller's Bluetooth side: pairing with
// test devices and emulating a HID keyboard. The Bluetooth keyboard is
// BatteryLab's most portable automation channel (§3.3): it works on
// Android and iOS, needs no rooting and no ADB, and leaves the WiFi and
// cellular paths untouched during a measurement. Its costs, also
// modelled: higher per-event latency than ADB and no device mirroring.
package bluetooth

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

// KeyLatency is the per-keystroke delivery latency over the HID channel.
const KeyLatency = 40 * time.Millisecond

// HIDKeyboard is the controller's emulated keyboard service. Multiple
// devices can pair; events target one device at a time by serial.
type HIDKeyboard struct {
	clock simclock.Clock

	mu     sync.Mutex
	paired map[string]*device.Device
	keys   map[string]int // per-serial keystroke counters
}

// NewHIDKeyboard returns an empty keyboard service.
func NewHIDKeyboard(clock simclock.Clock) *HIDKeyboard {
	return &HIDKeyboard{
		clock:  clock,
		paired: make(map[string]*device.Device),
		keys:   make(map[string]int),
	}
}

// Pair bonds with a device. The device's Bluetooth radio must be on.
func (k *HIDKeyboard) Pair(d *device.Device) error {
	if d.Bluetooth().State() == device.RadioOff {
		return fmt.Errorf("bluetooth: device %s radio is off", d.Serial())
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.paired[d.Serial()]; dup {
		return fmt.Errorf("bluetooth: device %s already paired", d.Serial())
	}
	k.paired[d.Serial()] = d
	return nil
}

// Unpair removes the bond.
func (k *HIDKeyboard) Unpair(serial string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.paired, serial)
}

// Paired reports whether serial is bonded.
func (k *HIDKeyboard) Paired(serial string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	_, ok := k.paired[serial]
	return ok
}

func (k *HIDKeyboard) lookup(serial string) (*device.Device, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	d, ok := k.paired[serial]
	if !ok {
		return nil, fmt.Errorf("bluetooth: device %s not paired", serial)
	}
	return d, nil
}

// SendKey delivers one key event (e.g. "KEYCODE_DPAD_DOWN", "KEYCODE_ENTER")
// and returns the channel latency the caller should account for.
func (k *HIDKeyboard) SendKey(serial, key string) (time.Duration, error) {
	d, err := k.lookup(serial)
	if err != nil {
		return 0, err
	}
	// A HID report is a handful of bytes on the BT radio.
	d.Bluetooth().Transfer(16, 0.1, false)
	if err := d.Input(device.InputEvent{Kind: device.InputKey, Key: key}); err != nil {
		return 0, err
	}
	k.mu.Lock()
	k.keys[serial]++
	k.mu.Unlock()
	return KeyLatency, nil
}

// TypeText sends a string one keystroke at a time, reporting the total
// channel latency.
func (k *HIDKeyboard) TypeText(serial, text string) (time.Duration, error) {
	d, err := k.lookup(serial)
	if err != nil {
		return 0, err
	}
	d.Bluetooth().Transfer(int64(16*len(text)), 0.1, false)
	if err := d.Input(device.InputEvent{Kind: device.InputText, Text: text}); err != nil {
		return 0, err
	}
	k.mu.Lock()
	k.keys[serial] += len(text)
	k.mu.Unlock()
	return time.Duration(len(text)) * KeyLatency, nil
}

// Keystrokes reports how many key events were delivered to serial.
func (k *HIDKeyboard) Keystrokes(serial string) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.keys[serial]
}
