package bluetooth

import (
	"testing"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

func pairDev(t *testing.T) (*HIDKeyboard, *device.Device) {
	t.Helper()
	clk := simclock.NewVirtual()
	d, err := device.New(clk, device.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	kb := NewHIDKeyboard(clk)
	if err := kb.Pair(d); err != nil {
		t.Fatal(err)
	}
	return kb, d
}

func TestPairRequiresRadio(t *testing.T) {
	clk := simclock.NewVirtual()
	d, _ := device.New(clk, device.Config{Seed: 1})
	d.Bluetooth().SetState(device.RadioOff)
	kb := NewHIDKeyboard(clk)
	if err := kb.Pair(d); err == nil {
		t.Fatal("pairing with BT off accepted")
	}
}

func TestDoublePair(t *testing.T) {
	kb, d := pairDev(t)
	if err := kb.Pair(d); err == nil {
		t.Fatal("double pair accepted")
	}
}

func TestSendKeyDelivers(t *testing.T) {
	kb, d := pairDev(t)
	app := &captureApp{pkg: "a"}
	d.Install(app)
	d.LaunchApp("a")
	lat, err := kb.SendKey(d.Serial(), "KEYCODE_ENTER")
	if err != nil {
		t.Fatal(err)
	}
	if lat != KeyLatency {
		t.Fatalf("latency = %v", lat)
	}
	if len(app.events) != 1 || app.events[0].Key != "KEYCODE_ENTER" {
		t.Fatalf("events = %+v", app.events)
	}
	if kb.Keystrokes(d.Serial()) != 1 {
		t.Fatal("keystroke counter")
	}
}

func TestSendKeyUnpaired(t *testing.T) {
	kb, d := pairDev(t)
	kb.Unpair(d.Serial())
	if kb.Paired(d.Serial()) {
		t.Fatal("still paired")
	}
	if _, err := kb.SendKey(d.Serial(), "K"); err == nil {
		t.Fatal("send to unpaired device accepted")
	}
}

func TestTypeTextLatencyScales(t *testing.T) {
	kb, d := pairDev(t)
	app := &captureApp{pkg: "a"}
	d.Install(app)
	d.LaunchApp("a")
	lat, err := kb.TypeText(d.Serial(), "news.com")
	if err != nil {
		t.Fatal(err)
	}
	if lat != 8*KeyLatency {
		t.Fatalf("latency = %v, want %v", lat, 8*KeyLatency)
	}
	if kb.Keystrokes(d.Serial()) != 8 {
		t.Fatalf("keystrokes = %d", kb.Keystrokes(d.Serial()))
	}
}

func TestBTActivityAccounted(t *testing.T) {
	kb, d := pairDev(t)
	kb.SendKey(d.Serial(), "K")
	_, rx := d.Bluetooth().Counters()
	if rx == 0 {
		t.Fatal("no BT bytes accounted")
	}
}

// captureApp records delivered input events.
type captureApp struct {
	pkg    string
	events []device.InputEvent
}

func (c *captureApp) PackageName() string            { return c.pkg }
func (c *captureApp) Launch(*device.Device) error    { return nil }
func (c *captureApp) Stop(*device.Device) error      { return nil }
func (c *captureApp) ClearData(*device.Device) error { return nil }
func (c *captureApp) HandleInput(_ *device.Device, ev device.InputEvent) error {
	c.events = append(c.events, ev)
	return nil
}
