package remote_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"batterylab"
	"batterylab/internal/api"
	"batterylab/internal/core"
	"batterylab/internal/remote"
	"batterylab/internal/simclock"
)

// lab is a two-vantage-point platform for round-trip tests. Building
// two identical labs (same seeds) lets the tests compare a remote run
// against a local control run of the same specs.
type lab struct {
	clock   *simclock.Virtual
	plat    *batterylab.Platform
	nodes   []string
	devices []string
}

func newLab(t *testing.T) *lab {
	t.Helper()
	clock := batterylab.VirtualClock()
	plat, err := batterylab.NewPlatform(clock, 2019)
	if err != nil {
		t.Fatal(err)
	}
	l := &lab{clock: clock, plat: plat}
	for i := 0; i < 2; i++ {
		name := []string{"node1", "node2"}[i]
		ctl, err := batterylab.NewController(clock, batterylab.ControllerConfig{Name: name, Seed: 100 + uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := batterylab.NewDevice(clock, batterylab.DeviceConfig{Seed: 500 + uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AttachDevice(dev); err != nil {
			t.Fatal(err)
		}
		for _, prof := range batterylab.BrowserProfiles() {
			if err := dev.Install(batterylab.NewBrowser(prof, ctl)); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.Storage().Push("/sdcard/blab.mp4", batterylab.SampleMP4(1<<20)); err != nil {
			t.Fatal(err)
		}
		if err := dev.Install(batterylab.NewVideoPlayer("/sdcard/blab.mp4")); err != nil {
			t.Fatal(err)
		}
		if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
			t.Fatal(err)
		}
		l.nodes = append(l.nodes, name)
		l.devices = append(l.devices, dev.Serial())
	}
	return l
}

// serve exposes the lab over HTTP with a build-driving goroutine and
// returns a connected client.
func (l *lab) serve(t *testing.T) *remote.Platform {
	t.Helper()
	token, err := batterylab.NewAPIToken(l.plat, "tester-"+t.Name(), "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(l.plat.Access.Handler())
	t.Cleanup(ts.Close)
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go batterylab.DriveBuilds(l.clock, l.plat, stop)
	client, err := remote.Dial(ts.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// campaignSpec is the two-node workload mix the round-trip tests run:
// a browser sweep on node1, video playback on node2.
func (l *lab) campaignSpec() api.CampaignSpec {
	return api.CampaignSpec{
		Experiments: []api.ExperimentSpec{
			{
				Node: l.nodes[0], Device: l.devices[0],
				Monitor: api.MonitorSpec{SampleRateHz: 1000},
				Workload: api.WorkloadSpec{
					Name:   "browser",
					Params: api.Params{"browser": "Brave", "pages": 2, "scrolls": 4},
				},
			},
			{
				Node: l.nodes[1], Device: l.devices[1],
				Monitor: api.MonitorSpec{SampleRateHz: 500},
				Workload: api.WorkloadSpec{
					Name:   "video",
					Params: api.Params{"duration_ms": 30000},
				},
			},
		},
	}
}

// progressLog collects observer callbacks from concurrent streams.
type progressLog struct {
	mu      sync.Mutex
	phases  map[string][]core.Phase
	samples map[string]int
	liveN   map[string]int
}

func newProgressLog() *progressLog {
	return &progressLog{
		phases:  make(map[string][]core.Phase),
		samples: make(map[string]int),
		liveN:   make(map[string]int),
	}
}

func (p *progressLog) OnPhase(e core.PhaseChange) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phases[e.Node] = append(p.phases[e.Node], e.Phase)
}

func (p *progressLog) OnSample(s core.Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples[s.Node]++
	if s.Live.N > p.liveN[s.Node] {
		p.liveN[s.Node] = s.Live.N
	}
}

// relTol checks a and b agree within 1e-9 relative tolerance.
func relTol(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestRemoteCampaignRoundTrip is the end-to-end acceptance path: a
// CampaignSpec submitted as JSON to an httptest server fans out across
// two nodes; phase events and binary-codec live samples stream back
// through remote.Platform while the builds run concurrently; and the
// reconstructed results match a local core run of the same specs on
// the virtual clock to 1e-9 (in fact bit for bit).
func TestRemoteCampaignRoundTrip(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	spec := server.campaignSpec()
	log := newProgressLog()

	ctx := context.Background()
	camp, err := client.StartCampaign(ctx, spec, log)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := camp.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("run %d (%s) failed: %v", r.Index, r.Node, r.Err)
		}
		if r.Result == nil || r.Result.Current.Len() == 0 {
			t.Fatalf("run %d has no trace", r.Index)
		}
	}

	// The local control: identical lab, same specs, driven by core's
	// own campaign scheduler.
	control := newLab(t)
	local, err := control.plat.StartCampaignSpec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	controlRuns, err := local.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for i := range runs {
		rr, lr := runs[i].Result, controlRuns[i].Result
		if lr == nil {
			t.Fatalf("control run %d failed: %v", i, controlRuns[i].Err)
		}
		if rr.Current.Len() != lr.Current.Len() {
			t.Errorf("run %d: %d samples remotely, %d locally", i, rr.Current.Len(), lr.Current.Len())
		}
		rMean, lMean := rr.Current.Summary().Mean, lr.Current.Summary().Mean
		if !relTol(rMean, lMean) {
			t.Errorf("run %d: mean %v remotely vs %v locally", i, rMean, lMean)
		}
		if !relTol(rr.EnergyMAH, lr.EnergyMAH) {
			t.Errorf("run %d: energy %v remotely vs %v locally", i, rr.EnergyMAH, lr.EnergyMAH)
		}
		if rr.Duration != lr.Duration {
			t.Errorf("run %d: duration %v remotely vs %v locally", i, rr.Duration, lr.Duration)
		}
	}

	// Both nodes streamed phases (through the terminal event, delivered
	// last) and live samples over the binary codec.
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, node := range server.nodes {
		phases := log.phases[node]
		if len(phases) == 0 {
			t.Fatalf("no phase events from %s", node)
		}
		if got := phases[len(phases)-1]; got != core.PhaseDone {
			t.Errorf("%s: last phase %v, want done", node, got)
		}
		seen := make(map[core.Phase]bool)
		for _, ph := range phases {
			seen[ph] = true
		}
		for _, want := range []core.Phase{core.PhaseTransportArmed, core.PhaseMonitorArmed, core.PhaseWorkload, core.PhaseSettle} {
			if !seen[want] {
				t.Errorf("%s: phase %v never streamed", node, want)
			}
		}
		if log.samples[node] == 0 {
			t.Errorf("no live samples from %s", node)
		}
		if log.liveN[node] == 0 {
			t.Errorf("%s: client-side live summary never advanced", node)
		}
	}
}

// TestRemoteSingleExperiment runs one spec through the session-shaped
// client API and cross-checks the server-side summary digest.
func TestRemoteSingleExperiment(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	spec := server.campaignSpec().Experiments[0]

	ctx := context.Background()
	sess, err := client.StartExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Phase() != core.PhaseDone {
		t.Fatalf("phase after Wait = %v", sess.Phase())
	}

	st, err := client.BuildStatus(ctx, sess.Build())
	if err != nil {
		t.Fatal(err)
	}
	if st.Summary == nil {
		t.Fatal("no summary on the finished build")
	}
	if !relTol(st.Summary.MeanMA, res.Current.Summary().Mean) {
		t.Errorf("summary mean %v vs reconstructed %v", st.Summary.MeanMA, res.Current.Summary().Mean)
	}
	if !relTol(st.Summary.EnergyMAH, res.EnergyMAH) {
		t.Errorf("summary energy %v vs reconstructed %v", st.Summary.EnergyMAH, res.EnergyMAH)
	}
	if st.Summary.DroppedLiveSamples != 0 {
		t.Errorf("capture dropped %d live samples", st.Summary.DroppedLiveSamples)
	}
	if int64(res.Current.Len()) != st.Summary.Samples {
		t.Errorf("trace %d samples vs summary %d", res.Current.Len(), st.Summary.Samples)
	}
	// The monitor's trace and the CPU traces all made the trip.
	if res.DeviceCPU.Len() == 0 || res.ControllerCPU.Len() == 0 {
		t.Error("CPU traces missing from the reconstructed result")
	}
}

// TestRemoteAnalytics runs one experiment and queries the server-side
// analytics engine: the rollup must agree with the reconstructed
// trace's own summary (energy bit-identical — both are the same
// trapezoid in the same order), and windowed buckets must partition
// the sample count.
func TestRemoteAnalytics(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	spec := server.campaignSpec().Experiments[0]

	ctx := context.Background()
	sess, err := client.StartExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	an, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if an.BuildID != sess.Build() || an.Artifact != "current.trace" {
		t.Fatalf("echo fields: %+v", an)
	}
	if an.Total.Samples != int64(res.Current.Len()) {
		t.Fatalf("rollup %d samples, trace has %d", an.Total.Samples, res.Current.Len())
	}
	if an.Total.EnergyMAH == nil || *an.Total.EnergyMAH != res.EnergyMAH {
		t.Fatalf("rollup energy %v, want bit-identical %v", an.Total.EnergyMAH, res.EnergyMAH)
	}
	if !relTol(*an.Total.MeanMA, res.Current.Summary().Mean) {
		t.Errorf("rollup mean %v vs trace summary %v", *an.Total.MeanMA, res.Current.Summary().Mean)
	}

	windowed, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{
		WindowNS: int64(2 * time.Second), Fields: []string{"mean", "energy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windowed.Buckets) == 0 {
		t.Fatal("no buckets from a windowed query")
	}
	var n int64
	for _, b := range windowed.Buckets {
		n += b.Samples
		if b.Samples > 0 && (b.MeanMA == nil || b.EnergyMAH == nil) {
			t.Fatalf("bucket missing requested fields: %+v", b)
		}
		if b.MinMA != nil || b.P50MA != nil {
			t.Fatalf("bucket carries unrequested fields: %+v", b)
		}
	}
	if n != an.Total.Samples {
		t.Fatalf("buckets sum to %d samples, rollup says %d", n, an.Total.Samples)
	}

	// A bad query surfaces as the typed 400 envelope.
	if _, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{Fields: []string{"bogus"}}); err == nil {
		t.Fatal("unknown field accepted")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.HTTPStatus() != 400 {
			t.Fatalf("unknown field error = %v, want 400 envelope", err)
		}
	}
}

// TestRemoteCancel cancels a session before the clock moves (no build
// driver): the queued settle timer is aborted server-side and the
// client maps the failure onto core.ErrCanceled.
func TestRemoteCancel(t *testing.T) {
	server := newLab(t)
	token, err := batterylab.NewAPIToken(server.plat, "canceler", "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.plat.Access.Handler())
	defer ts.Close()
	client, err := remote.Dial(ts.URL, token)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	sess, err := client.StartExperiment(ctx, api.ExperimentSpec{
		Node: server.nodes[0], Device: server.devices[0],
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 600000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Cancel()
	if _, err := sess.Wait(ctx); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Wait after Cancel = %v, want ErrCanceled", err)
	}
}

// TestRemoteCancelMidRun aborts a build that is already measuring: the
// session must finish as canceled — core.ErrCanceled from Wait, the
// structured Canceled flag on the wire status, and the "aborted" (not
// "failure") state through accessserver.finish.
func TestRemoteCancelMidRun(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	ctx := context.Background()

	firstSample := make(chan struct{})
	var once sync.Once
	sess, err := client.StartExperiment(ctx, api.ExperimentSpec{
		Node: server.nodes[0], Device: server.devices[0],
		Monitor:  api.MonitorSpec{SampleRateHz: 500},
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 600000}},
	}, core.ObserverFuncs{
		Sample: func(core.Sample) { once.Do(func() { close(firstSample) }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-firstSample // the run is demonstrably mid-measurement
	sess.Cancel()
	if _, err := sess.Wait(ctx); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Wait after mid-run Cancel = %v, want ErrCanceled", err)
	}

	st, err := client.BuildStatus(ctx, sess.Build())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "aborted" {
		t.Fatalf("wire state = %q, want aborted (not failure)", st.State)
	}
	if !st.Canceled {
		t.Fatal("canceled flag lost on the wire status")
	}
	if st.NodeLost {
		t.Fatal("node_lost flag set on a user cancellation")
	}
}

// TestRemoteSubmitErrors pins the typed error envelope on the client
// side: wrong token, unknown node, unknown workload, bad params.
func TestRemoteSubmitErrors(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	ctx := context.Background()

	wantCode := func(t *testing.T, err error, code api.ErrorCode) {
		t.Helper()
		var apiErr *api.Error
		if !errors.As(err, &apiErr) {
			t.Fatalf("error %v is not *api.Error", err)
		}
		if apiErr.Code != code {
			t.Fatalf("code = %s, want %s", apiErr.Code, code)
		}
	}

	_, err := client.StartExperiment(ctx, api.ExperimentSpec{
		Node: "mars", Device: server.devices[0],
		Workload: api.WorkloadSpec{Name: "idle"},
	})
	wantCode(t, err, api.CodeNotFound)

	_, err = client.StartExperiment(ctx, api.ExperimentSpec{
		Node: server.nodes[0], Device: server.devices[0],
		Workload: api.WorkloadSpec{Name: "defrag"},
	})
	wantCode(t, err, api.CodeNotFound)

	_, err = client.StartExperiment(ctx, api.ExperimentSpec{
		Node: server.nodes[0], Device: server.devices[0],
		Workload: api.WorkloadSpec{Name: "browser", Params: api.Params{"pages": 99}},
	})
	wantCode(t, err, api.CodeBadRequest)

	_, err = client.StartExperiment(ctx, api.ExperimentSpec{
		Node: server.nodes[0], Device: server.devices[0], Transport: api.TransportUSB,
		Workload: api.WorkloadSpec{Name: "idle"},
	})
	wantCode(t, err, api.CodeBadRequest)

	bad, err := remote.Dial(client.BaseURL(), "wrong-token")
	if err != nil {
		t.Fatal(err)
	}
	_, err = bad.Nodes(ctx)
	wantCode(t, err, api.CodeUnauthorized)
}

// TestRemoteDiscovery: node and workload discovery over the wire.
func TestRemoteDiscovery(t *testing.T) {
	server := newLab(t)
	client := server.serve(t)
	ctx := context.Background()

	nodes, err := client.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name != "node1" || len(nodes[0].Devices) != 1 {
		t.Fatalf("nodes = %+v", nodes)
	}
	names, err := client.WorkloadNames(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"browser": true, "video": true, "idle": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("workloads %v missing %v", names, want)
	}
}
