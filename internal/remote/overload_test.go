package remote_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/remote"
	"batterylab/internal/simclock"
)

// shedBackend compiles every spec into a build that never completes,
// so submissions pile up in flight and admission control engages.
type shedBackend struct{}

func (shedBackend) Compile(spec api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	return accessserver.Constraints{Node: spec.Node, Device: spec.Device},
		func(ctx *accessserver.BuildContext, done func(error)) {}, nil
}
func (shedBackend) WorkloadNames() []string { return []string{"hold"} }

// TestRemoteOverloaded: admission sheds cross the wire as the typed
// overloaded error (HTTP 429) with a shed_reason the client decodes
// via remote.IsOverloaded — and admins bypass admission entirely.
// The in-cap builds are submitted server-side so the test holds no
// event streams open (a shed submission never creates a session).
func TestRemoteOverloaded(t *testing.T) {
	clk := simclock.NewVirtual()
	srv := accessserver.New(clk, accessserver.Config{
		Executors:        1,
		HeartbeatEvery:   5 * time.Second,
		PendingTimeout:   time.Hour,
		OwnerInFlightCap: 2,
	})
	srv.SetSpecBackend(shedBackend{})
	user, err := srv.Users.Add("tester", accessserver.RoleExperimenter)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := api.ExperimentSpec{
		Node: "pi-1", Device: "pixel4-a",
		Workload: api.WorkloadSpec{Name: "hold"},
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.SubmitSpec(user, spec); err != nil {
			t.Fatalf("submission %d within the cap: %v", i, err)
		}
	}

	client, err := remote.Dial(ts.URL, user.Token)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.StartExperiment(context.Background(), spec)
	if err == nil {
		t.Fatal("third in-flight submission should shed")
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeOverloaded {
		t.Fatalf("err = %v, want api code %s", err, api.CodeOverloaded)
	}
	reason, ok := remote.IsOverloaded(err)
	if !ok || reason != accessserver.ShedOwnerCap {
		t.Fatalf("IsOverloaded = %q, %v; want %q, true", reason, ok, accessserver.ShedOwnerCap)
	}

	// A non-overload error must not read as a shed.
	if reason, ok := remote.IsOverloaded(errors.New("plain")); ok {
		t.Fatalf("IsOverloaded(plain error) = %q, true; want false", reason)
	}

	// Admins bypass admission: the same cap does not shed them.
	admin, err := srv.Users.Add("op", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := srv.SubmitSpec(admin, spec); err != nil {
			t.Fatalf("admin submission %d should bypass admission: %v", i, err)
		}
	}
}
