package remote_test

// Client-side resilience: transient HTTP failures retry with backoff,
// and severed event/sample streams reconnect from their ?from=
// cursors, so a remote run completes despite a flaky path to the
// access server.

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab"
	"batterylab/internal/api"
	"batterylab/internal/remote"
)

// flakyProxy fronts the real handler and injects failures:
//   - the first failEvery requests of each (method, path) pair answer
//     503 before reaching the server;
//   - the first stream request per cut path is severed after cutAfter
//     response bytes (mid-stream connection loss).
type flakyProxy struct {
	inner http.Handler

	mu        sync.Mutex
	failEvery int
	seen      map[string]int
	cutAfter  int
	cutDone   map[string]bool
	severed   map[string]bool     // budget actually exhausted, stream dropped
	fromSeen  map[string][]string // path -> ?from= values observed
}

func newFlakyProxy(inner http.Handler, failFirst, cutAfter int) *flakyProxy {
	return &flakyProxy{
		inner:     inner,
		failEvery: failFirst,
		seen:      map[string]int{},
		cutAfter:  cutAfter,
		cutDone:   map[string]bool{},
		severed:   map[string]bool{},
		fromSeen:  map[string][]string{},
	}
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.Path
	stream := strings.HasSuffix(r.URL.Path, "/events") || strings.HasSuffix(r.URL.Path, "/samples")
	p.mu.Lock()
	p.seen[key]++
	nth := p.seen[key]
	if stream {
		p.fromSeen[r.URL.Path] = append(p.fromSeen[r.URL.Path], r.URL.Query().Get("from"))
	}
	// Submissions are never failed: the client intentionally does not
	// retry them, and the test wants the run to proceed.
	inject := r.Method == http.MethodGet && nth <= p.failEvery
	cut := stream && p.cutAfter > 0 && !p.cutDone[r.URL.Path] && nth > p.failEvery
	if cut {
		p.cutDone[r.URL.Path] = true
	}
	p.mu.Unlock()

	if inject {
		http.Error(w, "bad gateway (injected)", http.StatusBadGateway)
		return
	}
	if cut {
		path := r.URL.Path
		p.inner.ServeHTTP(&cutWriter{w: w, budget: p.cutAfter, onCut: func() {
			p.mu.Lock()
			p.severed[path] = true
			p.mu.Unlock()
		}}, r)
		return
	}
	p.inner.ServeHTTP(w, r)
}

func (p *flakyProxy) requests(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen[key]
}

func (p *flakyProxy) froms(path string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fromSeen[path]...)
}

func (p *flakyProxy) wasCut(path string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.severed[path]
}

// cutWriter passes bytes through until its budget is spent, then
// severs the connection (http.ErrAbortHandler drops it without a
// graceful close — the mid-stream loss a flaky network produces).
// What was written before the cut is flushed first, so the client
// provably received a prefix and must resume from a positive cursor.
type cutWriter struct {
	w      http.ResponseWriter
	budget int
	onCut  func()
}

func (c *cutWriter) Header() http.Header { return c.w.Header() }

func (c *cutWriter) WriteHeader(code int) { c.w.WriteHeader(code) }

func (c *cutWriter) Write(b []byte) (int, error) {
	if c.budget <= 0 {
		c.Flush()
		if c.onCut != nil {
			c.onCut()
		}
		panic(http.ErrAbortHandler)
	}
	c.budget -= len(b)
	return c.w.Write(b)
}

func (c *cutWriter) Flush() {
	if f, ok := c.w.(http.Flusher); ok {
		f.Flush()
	}
}

// serveFlaky is lab.serve with the flaky proxy in the path. With
// drive=false the caller paces the virtual clock itself.
func serveFlaky(t *testing.T, l *lab, failFirst, cutAfter int, drive bool) (*remote.Platform, *flakyProxy) {
	t.Helper()
	token, err := batterylab.NewAPIToken(l.plat, "tester-"+t.Name(), "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	proxy := newFlakyProxy(l.plat.Access.Handler(), failFirst, cutAfter)
	ts := httptest.NewServer(proxy)
	t.Cleanup(ts.Close)
	if drive {
		stop := make(chan struct{})
		t.Cleanup(func() { close(stop) })
		go batterylab.DriveBuilds(l.clock, l.plat, stop)
	}
	client, err := remote.Dial(ts.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(remote.RetryPolicy{Attempts: 6, BaseDelay: 5 * time.Millisecond, MaxDelay: 40 * time.Millisecond})
	return client, proxy
}

// idleSpec is a deliberately long (10 simulated minutes) idle run:
// the reconnect test must sever the stream while plenty of run
// remains, and at simulation speed the length costs no real time.
func idleSpec(l *lab) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: l.nodes[0], Device: l.devices[0],
		Monitor:  api.MonitorSpec{SampleRateHz: 200},
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 600000}},
	}
}

// TestRetryTransientFailures: every GET's first attempt answers 502,
// yet the run completes because the client retries with backoff.
func TestRetryTransientFailures(t *testing.T) {
	l := newLab(t)
	client, proxy := serveFlaky(t, l, 1, 0, true)

	res, err := client.RunExperiment(nil, idleSpec(l))
	if err != nil {
		t.Fatalf("run with transient failures: %v", err)
	}
	if res.Current.Len() == 0 {
		t.Fatal("empty trace after retried run")
	}
	// The node listing is a clean probe of request-level retry: first
	// attempt 502, second through.
	if _, err := client.Nodes(nil); err != nil {
		t.Fatalf("nodes listing with injected 502: %v", err)
	}
	if n := proxy.requests("GET /api/v1/nodes"); n < 2 {
		t.Fatalf("nodes listing reached the proxy %d times, want >= 2 (retry)", n)
	}
}

// TestStreamReconnect: the event stream is severed mid-run while the
// virtual clock is frozen, so the build is provably still running when
// the client reconnects; the reconnect resumes from the ?from= cursor
// and the session still delivers every sample exactly once.
func TestStreamReconnect(t *testing.T) {
	l := newLab(t)
	client, proxy := serveFlaky(t, l, 0, 256, false)

	var mu sync.Mutex
	samples := 0
	obs := batterylab.ObserverFuncs{
		Sample: func(batterylab.Sample) { mu.Lock(); samples++; mu.Unlock() },
	}
	sess, err := client.StartExperiment(nil, idleSpec(l), obs)
	if err != nil {
		t.Fatal(err)
	}
	eventsPath := "/api/v1/builds/" + strconv.Itoa(sess.Build()) + "/events"

	// Step simulated time only until the proxy severs the event stream,
	// then freeze the clock: the run is mid-flight and stays there. The
	// per-step throttle keeps the stream handler (which writes events on
	// its own goroutine) well ahead of simulated time, so the cut lands
	// during the run's first phase transitions, minutes of simulated
	// time before the finish.
	deadline := time.Now().Add(10 * time.Second)
	for !proxy.wasCut(eventsPath) {
		if time.Now().After(deadline) {
			t.Fatal("event stream never reached the cut budget")
		}
		l.clock.Step()
		time.Sleep(100 * time.Microsecond)
	}
	// With time frozen the build cannot finish; the only way a second
	// /events request appears is the client's reconnect logic.
	for len(proxy.froms(eventsPath)) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected the severed event stream")
		}
		time.Sleep(time.Millisecond)
	}

	// Resume time and let the run complete.
	stop := make(chan struct{})
	defer close(stop)
	go batterylab.DriveBuilds(l.clock, l.plat, stop)
	res, err := sess.Wait(nil)
	if err != nil {
		t.Fatalf("run with severed streams: %v", err)
	}
	if res.Current.Len() == 0 {
		t.Fatal("empty trace after reconnected run")
	}

	froms := proxy.froms(eventsPath)
	if len(froms) < 2 {
		t.Fatalf("event stream connected %d times, want >= 2 (reconnect)", len(froms))
	}
	resumed := false
	for _, f := range froms[1:] {
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no reconnect carried a positive ?from= cursor: %v", froms)
	}
	// Exactly-once delivery across the cut: the observer saw as many
	// samples as the server recorded for the whole run.
	st, err := client.BuildStatus(nil, sess.Build())
	if err != nil {
		t.Fatal(err)
	}
	if st.Summary == nil {
		t.Fatal("no run summary")
	}
	mu.Lock()
	got := samples
	mu.Unlock()
	if got == 0 {
		t.Fatal("observer saw no samples")
	}
	live := sess.Live()
	if int64(live.N) != int64(got) {
		t.Fatalf("client aggregate N = %d, observer delivered %d — duplicate or lost samples across the reconnect", live.N, got)
	}
}
