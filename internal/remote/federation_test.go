package remote_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/cluster"
	"batterylab/internal/api"
	"batterylab/internal/core"
	"batterylab/internal/remote"
	"batterylab/internal/simclock"
)

const fedToken = "fed-relay-s3cret"

// fedLab is a two-server federation on ONE virtual clock: platform A
// ("lab-a") hosts node1, platform B ("lab-b") hosts node2, joined over
// real HTTP with a shared cluster token and the remote.Relay transport.
// Per-node seeds match newLab's, so a single-server lab built by
// newLab is the bit-identical control for the same campaign.
type fedLab struct {
	clock    *simclock.Virtual
	a, b     *batterylab.Platform
	tsA, tsB *httptest.Server
	devices  []string // devices[0] on A's node1, devices[1] on B's node2
}

// fedNode replicates newLab's per-node build (same seeds, browsers,
// video) on an arbitrary platform and returns the device serial.
func fedNode(t *testing.T, clock *simclock.Virtual, plat *batterylab.Platform, i int) string {
	t.Helper()
	name := []string{"node1", "node2"}[i]
	ctl, err := batterylab.NewController(clock, batterylab.ControllerConfig{Name: name, Seed: 100 + uint64(i)})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := batterylab.NewDevice(clock, batterylab.DeviceConfig{Seed: 500 + uint64(i)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	for _, prof := range batterylab.BrowserProfiles() {
		if err := dev.Install(batterylab.NewBrowser(prof, ctl)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Storage().Push("/sdcard/blab.mp4", batterylab.SampleMP4(1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Install(batterylab.NewVideoPlayer("/sdcard/blab.mp4")); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
		t.Fatal(err)
	}
	return dev.Serial()
}

func newFedLab(t *testing.T) *fedLab {
	t.Helper()
	clock := batterylab.VirtualClock()
	a, err := batterylab.NewPlatform(clock, 2019)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batterylab.NewPlatform(clock, 2020)
	if err != nil {
		t.Fatal(err)
	}
	devA := fedNode(t, clock, a, 0)
	devB := fedNode(t, clock, b, 1)
	tsA := httptest.NewServer(a.Access.Handler())
	tsB := httptest.NewServer(b.Access.Handler())
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	a.Access.ConfigureCluster("lab-a", tsA.URL, fedToken)
	b.Access.ConfigureCluster("lab-b", tsB.URL, fedToken)
	relay := func(ctx context.Context, peerURL, token string, spec api.ExperimentSpec, sink accessserver.PeerSink) (*api.BuildStatus, error) {
		return remote.Relay(ctx, peerURL, token, spec, sink)
	}
	a.Access.SetPeerRelay(relay)
	b.Access.SetPeerRelay(relay)

	fl := &fedLab{clock: clock, a: a, b: b, tsA: tsA, tsB: tsB, devices: []string{devA, devB}}
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go fl.drive(stop)

	// Join the mesh: A's first announce teaches B about lab-a, then B's
	// announce back (to the peer it just learned) carries its census —
	// both sides are online with full vantage-point knowledge before
	// this returns, since StartCluster's first beat is synchronous.
	a.Access.StartCluster(tsB.URL)
	b.Access.StartCluster()
	return fl
}

// drive is DriveBuilds for a shared clock: step while EITHER server has
// queued or running builds, freeze when the whole cluster is idle.
func (fl *fedLab) drive(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		busy := fl.a.Access.Running()+fl.a.Access.QueueLength()+
			fl.b.Access.Running()+fl.b.Access.QueueLength() > 0
		if !busy {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if !fl.clock.Step() {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// client dials server A as an experimenter — the home server every
// federated submission in these tests goes through.
func (fl *fedLab) client(t *testing.T) *remote.Platform {
	t.Helper()
	token, err := batterylab.NewAPIToken(fl.a, "fed-"+t.Name(), "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	client, err := remote.Dial(fl.tsA.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// campaignSpec mirrors lab.campaignSpec: a browser sweep on node1
// (local to A) and video playback on node2 (which A only knows through
// lab-b's census).
func (fl *fedLab) campaignSpec() api.CampaignSpec {
	return api.CampaignSpec{
		Experiments: []api.ExperimentSpec{
			{
				Node: "node1", Device: fl.devices[0],
				Monitor: api.MonitorSpec{SampleRateHz: 1000},
				Workload: api.WorkloadSpec{
					Name:   "browser",
					Params: api.Params{"browser": "Brave", "pages": 2, "scrolls": 4},
				},
			},
			{
				Node: "node2", Device: fl.devices[1],
				Monitor: api.MonitorSpec{SampleRateHz: 500},
				Workload: api.WorkloadSpec{
					Name:   "video",
					Params: api.Params{"duration_ms": 30000},
				},
			},
		},
	}
}

// runFederated submits the campaign to A, waits it out, and returns the
// per-node home-server summaries plus the runs and sessions.
func runFederated(t *testing.T, fl *fedLab, client *remote.Platform, log *progressLog) (map[string]api.RunSummary, []remote.CampaignRun, []*remote.Session) {
	t.Helper()
	ctx := context.Background()

	// Pin both builds' start instant to the current virtual time. The
	// routed experiment crosses a real HTTP relay before it starts on B,
	// and if the driver stepped the clock in that window the remote
	// workload would begin at a different instant than the local
	// control's — summaries would only agree to a tolerance instead of
	// bit-exactly. Holding the clock until both sides report the builds
	// running closes the window without blocking the relay (real time
	// keeps passing).
	release := fl.clock.Hold()
	held := true
	defer func() {
		if held {
			release()
		}
	}()
	camp, err := client.StartCampaign(ctx, fl.campaignSpec(), log)
	if err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		if fl.a.Access.Running() == 2 && fl.b.Access.Running() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relay never started: A running %d (want 2), B running %d (want 1)",
				fl.a.Access.Running(), fl.b.Access.Running())
		}
		time.Sleep(200 * time.Microsecond)
	}
	release()
	held = false
	runs, err := camp.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("run %d (%s) failed: %v", r.Index, r.Node, r.Err)
		}
		if r.Result == nil || r.Result.Current.Len() == 0 {
			t.Fatalf("run %d (%s) has no trace", r.Index, r.Node)
		}
	}
	sums := make(map[string]api.RunSummary)
	for _, s := range camp.Sessions() {
		st, err := client.BuildStatus(ctx, s.Build())
		if err != nil {
			t.Fatal(err)
		}
		if st.Summary == nil {
			t.Fatalf("build %d (%s): no summary on the home server", st.ID, st.Node)
		}
		sums[st.Node] = *st.Summary
	}
	return sums, runs, camp.Sessions()
}

// TestFederationRoundTrip is the cross-server acceptance path: a
// campaign submitted to server A places one experiment on its own node
// and routes the other to server B's node through the cluster census,
// with events, samples, summary and artifacts streaming home — and the
// results are bit-identical to the same campaign on a single-server
// control lab, and to a second federated run (virtual-clock
// determinism).
func TestFederationRoundTrip(t *testing.T) {
	fl := newFedLab(t)
	client := fl.client(t)
	log := newProgressLog()
	ctx := context.Background()

	// Both sides see each other online before anything is submitted.
	if st, _, ok := fl.a.Access.Cluster().PeerState("lab-b", fl.clock.Now()); !ok || st != cluster.StateOnline {
		t.Fatalf("lab-b on A: ok=%v state=%v, want online", ok, st)
	}
	if st, _, ok := fl.b.Access.Cluster().PeerState("lab-a", fl.clock.Now()); !ok || st != cluster.StateOnline {
		t.Fatalf("lab-a on B: ok=%v state=%v, want online", ok, st)
	}

	sums, runs, sessions := runFederated(t, fl, client, log)

	// Provenance: node2's build was routed via lab-b; node1's ran here.
	for _, s := range sessions {
		st, err := client.BuildStatus(ctx, s.Build())
		if err != nil {
			t.Fatal(err)
		}
		switch st.Node {
		case "node1":
			if st.RoutedVia != "" {
				t.Errorf("node1 routed via %q, want local", st.RoutedVia)
			}
		case "node2":
			if st.RoutedVia != "lab-b" {
				t.Errorf("node2 routed via %q, want lab-b", st.RoutedVia)
			}
			// The executing server's own record points home.
			peerClient, err := remote.Dial(fl.tsB.URL, fedToken)
			if err != nil {
				t.Fatal(err)
			}
			rst, err := peerClient.BuildStatus(ctx, 1) // B's only build
			if err != nil {
				t.Fatal(err)
			}
			if rst.Node != "node2" || rst.HomeServer != "lab-a" || rst.State != "success" {
				t.Errorf("peer-side record = node %q home %q state %q", rst.Node, rst.HomeServer, rst.State)
			}
			// Artifacts were copied home: the server-side analytics
			// engine answers for the routed build on A.
			an, err := client.Analytics(ctx, s.Build(), api.AnalyticsQuery{})
			if err != nil {
				t.Fatalf("analytics on the routed build: %v", err)
			}
			if an.Total.Samples != sums["node2"].Samples {
				t.Errorf("analytics over relayed trace: %d samples, summary says %d", an.Total.Samples, sums["node2"].Samples)
			}
		default:
			t.Errorf("unexpected node %q", st.Node)
		}
	}

	// The routed build's feed streamed home: phases through done, and
	// live samples, all observed via server A.
	log.mu.Lock()
	for _, node := range []string{"node1", "node2"} {
		phases := log.phases[node]
		if len(phases) == 0 || phases[len(phases)-1] != core.PhaseDone {
			t.Errorf("%s: phases %v, want a stream ending in done", node, phases)
		}
		if log.samples[node] == 0 {
			t.Errorf("no live samples from %s", node)
		}
	}
	log.mu.Unlock()

	// Control: the identical campaign on a single-server lab with the
	// same node seeds. Wherever the build ran, the summaries match bit
	// for bit.
	control := newLab(t)
	cclient := control.serve(t)
	ccamp, err := cclient.StartCampaign(ctx, control.campaignSpec(), newProgressLog())
	if err != nil {
		t.Fatal(err)
	}
	cruns, err := ccamp.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ccamp.Sessions() {
		st, err := cclient.BuildStatus(ctx, s.Build())
		if err != nil {
			t.Fatal(err)
		}
		if st.Summary == nil {
			t.Fatalf("control build %d: no summary", st.ID)
		}
		if got := sums[st.Node]; got != *st.Summary {
			t.Errorf("%s: federated summary %+v != control %+v", st.Node, got, *st.Summary)
		}
	}
	for i := range runs {
		fr, cr := runs[i].Result, cruns[i].Result
		if cr == nil {
			t.Fatalf("control run %d failed: %v", i, cruns[i].Err)
		}
		if fr.Current.Len() != cr.Current.Len() || fr.EnergyMAH != cr.EnergyMAH || fr.Duration != cr.Duration {
			t.Errorf("run %d: federated trace (%d samples, %v mAh, %v) != control (%d, %v, %v)",
				i, fr.Current.Len(), fr.EnergyMAH, fr.Duration, cr.Current.Len(), cr.EnergyMAH, cr.Duration)
		}
	}

	// Determinism: a fresh federation, same seeds, same campaign —
	// bit-identical summaries again.
	fl2 := newFedLab(t)
	sums2, _, _ := runFederated(t, fl2, fl2.client(t), newProgressLog())
	for node, want := range sums {
		if got := sums2[node]; got != want {
			t.Errorf("%s: second federated run %+v != first %+v", node, got, want)
		}
	}
}

// TestFederationPeerLossFailover kills the executing peer mid-run: the
// home server's relay breaks, the failover budget burns down against a
// dead peer, and the build fails typed — node_lost on the wire, the
// peer named in the error — exactly like a lost local node.
func TestFederationPeerLossFailover(t *testing.T) {
	fl := newFedLab(t)
	client := fl.client(t)
	log := newProgressLog()
	ctx := context.Background()

	sess, err := client.StartExperiment(ctx, api.ExperimentSpec{
		Node: "node2", Device: fl.devices[1],
		Monitor: api.MonitorSpec{SampleRateHz: 500},
		Workload: api.WorkloadSpec{
			Name:   "video",
			Params: api.Params{"duration_ms": 120000},
		},
	}, log)
	if err != nil {
		t.Fatal(err)
	}

	// Wait (real time) until the routed run is live: samples from B are
	// streaming through A's feed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		log.mu.Lock()
		n := log.samples["node2"]
		log.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("routed build never streamed a sample home")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st, err := client.BuildStatus(ctx, sess.Build()); err != nil || st.RoutedVia != "lab-b" {
		t.Fatalf("mid-run status: routed_via=%q err=%v, want lab-b", st.RoutedVia, err)
	}

	// Kill the peer: sever every live connection and refuse new ones.
	// The clock is held across the kill so the remote run cannot sprint
	// to completion in the gap.
	release := fl.clock.Hold()
	fl.tsB.CloseClientConnections()
	fl.tsB.Listener.Close()
	release()

	_, err = sess.Wait(ctx)
	if err == nil {
		t.Fatal("routed build reported success after its peer died")
	}
	if !errors.Is(err, core.ErrNodeLost) {
		t.Fatalf("Wait error = %v, want core.ErrNodeLost", err)
	}

	st, err := client.BuildStatus(ctx, sess.Build())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failure" || !st.NodeLost {
		t.Fatalf("terminal status: state=%q node_lost=%v, want a typed node-lost failure", st.State, st.NodeLost)
	}
	if !strings.Contains(st.Error, "peer") {
		t.Fatalf("terminal error %q does not name the peer loss", st.Error)
	}
}
