package remote_test

// Feed-gateway round trip: a feedgw.Gateway in front of the access
// server must deliver the v1 streaming routes byte-for-byte as a direct
// connection would — including across a mid-relay severed upstream,
// where it resumes from its accumulated ?from= cursor instead of
// surfacing the loss to its client.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"batterylab"
	"batterylab/internal/accessserver/feedgw"
	"batterylab/internal/api"
	"batterylab/internal/remote"
)

// get fetches a URL with a bearer token and returns status and body.
func get(t *testing.T, url, token string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// decodeFrames decodes a framed binary sample stream into its points.
func decodeFrames(t *testing.T, b []byte) []api.SamplePoint {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(b))
	var pts []api.SamplePoint
	for {
		p, err := api.ReadSampleFrame(br)
		if err == io.EOF {
			return pts
		}
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		pts = append(pts, p...)
	}
}

// TestGatewayRoundTrip runs a build to completion, then replays its
// event and sample streams both directly and through a gateway and
// requires bit-identical bytes. A second gateway relays through the
// severing proxy: its upstream connection is cut mid-replay, it
// resumes from the cursor, and the client still ends up with the same
// stream — byte-identical NDJSON (lines are self-delimiting) and
// point-identical samples (frame boundaries may legally differ across
// a resume).
func TestGatewayRoundTrip(t *testing.T) {
	l := newLab(t)
	token, err := batterylab.NewAPIToken(l.plat, "gw-tester", "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(l.plat.Access.Handler())
	t.Cleanup(upstream.Close)

	client, err := remote.Dial(upstream.URL, token)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go batterylab.DriveBuilds(l.clock, l.plat, stop)
	sess, err := client.StartExperiment(nil, idleSpec(l), batterylab.ObserverFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.Build()
	res, err := sess.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Current.Len() == 0 {
		t.Fatal("empty trace; nothing to relay")
	}
	eventsPath := fmt.Sprintf("/api/v1/builds/%d/events", id)
	samplesPath := fmt.Sprintf("/api/v1/builds/%d/samples", id)

	dst, directEvents := get(t, upstream.URL+eventsPath, token)
	if dst != 200 {
		t.Fatalf("direct events: status %d", dst)
	}
	dst, directSamples := get(t, upstream.URL+samplesPath, token)
	if dst != 200 {
		t.Fatalf("direct samples: status %d", dst)
	}
	if len(directEvents) == 0 || len(directSamples) == 0 {
		t.Fatal("direct replay is empty")
	}

	// Clean path: gateway bytes must match the direct bytes exactly.
	gw := feedgw.New(upstream.URL)
	gwts := httptest.NewServer(gw.Handler())
	t.Cleanup(gwts.Close)
	st, gwEvents := get(t, gwts.URL+eventsPath, token)
	if st != 200 {
		t.Fatalf("gateway events: status %d", st)
	}
	if !bytes.Equal(gwEvents, directEvents) {
		t.Fatalf("gateway event bytes differ from direct (%d vs %d bytes)", len(gwEvents), len(directEvents))
	}
	st, gwSamples := get(t, gwts.URL+samplesPath, token)
	if st != 200 {
		t.Fatalf("gateway samples: status %d", st)
	}
	if !bytes.Equal(gwSamples, directSamples) {
		t.Fatalf("gateway sample bytes differ from direct (%d vs %d bytes)", len(gwSamples), len(directSamples))
	}

	// Severed path: a second gateway relays through the severing proxy,
	// which cuts each stream's first request after 100 bytes. The sample
	// stream is followed live during a second run, so the cut lands
	// mid-relay; the gateway must reconnect with a positive cursor and
	// its client must not be able to tell.
	proxy := newFlakyProxy(l.plat.Access.Handler(), 0, 100)
	pts := httptest.NewServer(proxy)
	t.Cleanup(pts.Close)
	gw2 := feedgw.New(pts.URL)
	gw2.SetRetryPolicy(remote.RetryPolicy{Attempts: 6, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond})
	gwts2 := httptest.NewServer(gw2.Handler())
	t.Cleanup(gwts2.Close)

	sess2, err := client.StartExperiment(nil, idleSpec(l), batterylab.ObserverFuncs{})
	if err != nil {
		t.Fatal(err)
	}
	id2 := sess2.Build()
	samplesPath2 := fmt.Sprintf("/api/v1/builds/%d/samples", id2)
	eventsPath2 := fmt.Sprintf("/api/v1/builds/%d/events", id2)

	type fetched struct {
		st   int
		body []byte
		err  error
	}
	done := make(chan fetched, 1)
	go func() {
		req, err := http.NewRequest("GET", gwts2.URL+samplesPath2, nil)
		if err != nil {
			done <- fetched{err: err}
			return
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- fetched{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- fetched{st: resp.StatusCode, body: b, err: err}
	}()
	if _, err := sess2.Wait(nil); err != nil {
		t.Fatal(err)
	}
	live := <-done
	if live.err != nil || live.st != 200 {
		t.Fatalf("gateway samples via severing proxy: status %d, err %v", live.st, live.err)
	}
	if !proxy.wasCut(samplesPath2) {
		t.Fatal("proxy never severed the sample stream; the resume path went untested")
	}
	froms := proxy.froms(samplesPath2)
	if len(froms) < 2 {
		t.Fatalf("sample stream reached upstream %d times, want >= 2 (gateway reconnect)", len(froms))
	}
	resumed := false
	for _, f := range froms[1:] {
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no gateway reconnect carried a positive ?from= cursor: %v", froms)
	}
	dst, direct2 := get(t, upstream.URL+samplesPath2, token)
	if dst != 200 {
		t.Fatalf("direct samples for run 2: status %d", dst)
	}
	want := decodeFrames(t, direct2)
	got := decodeFrames(t, live.body)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("samples across severed relay: %d points, want %d identical points", len(got), len(want))
	}

	st, cutEvents := get(t, gwts2.URL+eventsPath2, token)
	if st != 200 {
		t.Fatalf("gateway events via severing proxy: status %d", st)
	}
	dst, directEvents2 := get(t, upstream.URL+eventsPath2, token)
	if dst != 200 {
		t.Fatalf("direct events for run 2: status %d", dst)
	}
	// NDJSON lines are self-delimiting, so even a severed relay must be
	// byte-identical once reassembled.
	if !bytes.Equal(cutEvents, directEvents2) {
		t.Fatalf("event bytes across severed relay differ from direct (%d vs %d bytes)", len(cutEvents), len(directEvents2))
	}
}

// TestGatewayErrors: the gateway validates cursors locally (typed
// invalid_cursor, no upstream round trip) and passes upstream typed
// errors through verbatim.
func TestGatewayErrors(t *testing.T) {
	l := newLab(t)
	token, err := batterylab.NewAPIToken(l.plat, "gw-errs", "experimenter")
	if err != nil {
		t.Fatal(err)
	}
	proxy := newFlakyProxy(l.plat.Access.Handler(), 0, 0)
	upstream := httptest.NewServer(proxy)
	t.Cleanup(upstream.Close)
	gw := feedgw.New(upstream.URL)
	gwts := httptest.NewServer(gw.Handler())
	t.Cleanup(gwts.Close)

	// Garbage cursor: rejected at the gateway, upstream never dialed.
	st, body := get(t, gwts.URL+"/api/v1/builds/1/events?from=bogus", token)
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if st != 400 || env.Error == nil || env.Error.Code != api.CodeInvalidCursor {
		t.Fatalf("bad cursor: status %d, envelope %+v", st, env.Error)
	}
	if n := proxy.requests("GET /api/v1/builds/1"); n != 0 {
		t.Fatalf("bad cursor cost %d upstream requests, want 0", n)
	}

	// Unknown build: the upstream's typed 404 passes through.
	st, body = get(t, gwts.URL+"/api/v1/builds/999999/events", token)
	env = api.Envelope{}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if st != 404 || env.Error == nil {
		t.Fatalf("unknown build: status %d, envelope %+v", st, env.Error)
	}

	// Bad token: the upstream's 401 passes through too, so gateway
	// clients authenticate exactly as direct clients do.
	st, _ = get(t, gwts.URL+"/api/v1/builds/1/events", "not-a-token")
	if st != 401 {
		t.Fatalf("bad token: status %d, want 401", st)
	}
}
