// Package remote is the client side of BatteryLab's v1 remote
// execution API: a location-transparent mirror of the in-process
// experiment runner. remote.Platform speaks the wire protocol of
// internal/api against an access server's /api/v1/ routes, and its
// sessions expose the same Start/Wait/Cancel/Observer shape as
// core.Session — experiments written against the shared backend
// interface in the batterylab facade run unchanged whether the
// platform is in this address space or across the network.
//
// A remote session's life:
//
//  1. StartExperiment POSTs the declarative spec; the server compiles
//     it against its workload registry and queues a build.
//  2. Two streams follow the build: NDJSON phase events
//     (/builds/{id}/events) and live power samples
//     (/builds/{id}/samples, length-prefixed binary trace frames).
//     Observers receive the same PhaseChange/Sample callbacks a local
//     session would deliver; Sample.Live is re-aggregated client-side
//     from the live feed.
//  3. When the build finishes, the session fetches the run summary and
//     the workspace artifacts — the full binary current trace plus the
//     CPU CSVs — and reconstructs a *core.Result. Because the binary
//     codec is lossless and the streaming aggregators are recomputed
//     in append order, Summary().Mean and EnergyMAH are bit-identical
//     to the server's (and to a local run of the same spec).
//
// The client is resilient to transient failures: idempotent requests
// retry with exponential backoff and jitter (see RetryPolicy), and a
// dropped event or sample stream reconnects from its resume cursor
// (?from=) instead of silently losing the tail. Submission POSTs never
// auto-retry — a retried submit could double-queue a build.
package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"batterylab/internal/api"
	"batterylab/internal/core"
	"batterylab/internal/samples"
	"batterylab/internal/trace"
)

// Platform is a client handle to a remote access server. It is safe
// for concurrent use; every session it starts shares its HTTP client.
type Platform struct {
	base  *url.URL
	token string
	hc    *http.Client
	retry RetryPolicy

	// Resilience counters, shared by every session (see Stats).
	requestRetries   atomic.Int64
	streamReconnects atomic.Int64
	epochResets      atomic.Int64
}

// ClientStats counts the client's recoveries so far: how often requests
// were retried, streams reconnected from their resume cursors, and
// resume state was reset because the server restarted (feed epoch
// moved). All zeros is a healthy network; growth quantifies the
// flakiness the retry machinery is absorbing.
type ClientStats struct {
	RequestRetries   int64 `json:"request_retries"`
	StreamReconnects int64 `json:"stream_reconnects"`
	EpochResets      int64 `json:"epoch_resets"`
}

// Stats snapshots the client's resilience counters.
func (p *Platform) Stats() ClientStats {
	return ClientStats{
		RequestRetries:   p.requestRetries.Load(),
		StreamReconnects: p.streamReconnects.Load(),
		EpochResets:      p.epochResets.Load(),
	}
}

// RetryPolicy tunes the client's resilience to transient failures:
// idempotent requests (GETs, cancels) retry on network errors and
// gateway-class statuses (502/503/504) with exponential backoff plus
// jitter, and the event/sample streams reconnect from their resume
// cursors under the same budget. Submission POSTs never auto-retry —
// a retried submit could double-queue a build.
type RetryPolicy struct {
	// Attempts is the total tries per request (and the consecutive
	// reconnect budget per stream). Minimum 1.
	Attempts int
	// BaseDelay is the first backoff, doubling per retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff before jitter.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is what Dial installs.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}

// Dial validates the server URL and returns a client bound to the
// bearer token. No connection is made until the first request.
func Dial(server, token string) (*Platform, error) {
	u, err := url.Parse(server)
	if err != nil {
		return nil, fmt.Errorf("remote: parsing server URL %q: %w", server, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("remote: server URL %q needs an http(s) scheme", server)
	}
	return &Platform{base: u, token: token, hc: &http.Client{}, retry: DefaultRetryPolicy}, nil
}

// SetRetryPolicy replaces the client's retry policy. Call before
// starting sessions.
func (p *Platform) SetRetryPolicy(rp RetryPolicy) {
	if rp.Attempts < 1 {
		rp.Attempts = 1
	}
	p.retry = rp
}

// backoff computes the jittered delay before retry attempt n (1-based):
// BaseDelay doubling per attempt, capped at MaxDelay, scaled by a
// random factor in [0.5, 1.5) so a fleet of reconnecting clients does
// not thunder back in lockstep. Doubling by repeated shift-with-cap
// rather than one big shift keeps a large Attempts from overflowing
// into a negative (instant) delay.
func (p *Platform) backoff(n int) time.Duration {
	d := p.retry.BaseDelay
	if d <= 0 {
		// A partial policy (only Attempts set) must still back off, not
		// hammer a struggling server with zero-delay retries.
		d = DefaultRetryPolicy.BaseDelay
	}
	max := p.retry.MaxDelay
	if max <= 0 {
		max = time.Minute
	}
	for i := 1; i < n && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// retrySleep waits out the backoff before attempt n, honoring ctx.
// Reports false when ctx ended first.
func (p *Platform) retrySleep(ctx context.Context, n int) bool {
	t := time.NewTimer(p.backoff(n))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// transientStatus reports whether an HTTP status is worth retrying:
// gateway-class failures that say "the server did not handle this",
// not application errors.
func transientStatus(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// SetHTTPClient swaps the underlying HTTP client (custom TLS,
// timeouts). Call before starting sessions.
func (p *Platform) SetHTTPClient(hc *http.Client) { p.hc = hc }

// BaseURL reports the server URL the client dials.
func (p *Platform) BaseURL() string { return p.base.String() }

// url joins the base with a formatted path.
func (p *Platform) url(format string, args ...any) string {
	ref := &url.URL{Path: fmt.Sprintf(format, args...)}
	return p.base.ResolveReference(ref).String()
}

// doJSON performs one request/response round trip, retrying transient
// failures (network errors, 502/503/504) with backoff for idempotent
// requests — GETs, plus POSTs the caller marks idempotent via
// doJSONIdempotent (cancel is; submit is not, since a retried submit
// could double-queue a build). A non-2xx response is decoded as the
// api.Error envelope (synthesized from the bare status when the body
// is not an envelope) and returned as *api.Error.
func (p *Platform) doJSON(ctx context.Context, method, u string, in, out any) error {
	return p.do(ctx, method, u, in, out, method == http.MethodGet)
}

// doJSONIdempotent is doJSON with retries enabled regardless of
// method, for POSTs that are safe to repeat (cancel).
func (p *Platform) doJSONIdempotent(ctx context.Context, method, u string, in, out any) error {
	return p.do(ctx, method, u, in, out, true)
}

func (p *Platform) do(ctx context.Context, method, u string, in, out any, idempotent bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("remote: encoding request: %w", err)
		}
		payload = data
	}
	attempts := p.retry.Attempts
	if !idempotent || attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if !p.retrySleep(ctx, attempt-1) {
				break
			}
			p.requestRetries.Add(1)
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, body)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+p.token)
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := p.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("remote: %s %s: %w", method, u, err)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if transientStatus(resp.StatusCode) {
			lastErr = decodeError(resp)
			resp.Body.Close()
			continue
		}
		if resp.StatusCode >= 300 {
			err := decodeError(resp)
			resp.Body.Close()
			return err
		}
		// Read the whole body before declaring success: a connection
		// reset mid-body is the same transient failure as one before
		// the headers and retries under the same budget.
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("remote: %s %s: reading response: %w", method, u, err)
			continue
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return lastErr
}

// IsOverloaded reports whether err is the server's 429 admission
// rejection, and if so the typed shed reason ("owner_cap" — back off
// your own submissions; "queue_watermark" — the fleet is saturated,
// back off globally). Submissions are never auto-retried, so callers
// decide their own backoff on this signal.
func IsOverloaded(err error) (reason string, ok bool) {
	var ae *api.Error
	if errors.As(err, &ae) && ae.Code == api.CodeOverloaded {
		return ae.ShedReason, true
	}
	return "", false
}

// decodeError turns a non-2xx response into *api.Error.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.Envelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
		return env.Error
	}
	return &api.Error{
		Code:    api.CodeForStatus(resp.StatusCode),
		Message: strings.TrimSpace(string(data)),
	}
}

// transientErr marks a failure worth retrying — network-level, or a
// gateway-class response status. It unwraps to the underlying error so
// errors.As against *api.Error keeps working.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// stream opens a streaming GET and returns the open body. Transient
// failures come back wrapped as *transientErr; callers with resume
// cursors (the stream loops, getBytes) retry on those.
func (p *Platform) stream(ctx context.Context, u string) (io.ReadCloser, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+p.token)
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, &transientErr{err}
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		err := decodeError(resp)
		if transientStatus(resp.StatusCode) {
			return nil, &transientErr{err}
		}
		return nil, err
	}
	return resp.Body, nil
}

// OpenStream opens a long-lived streaming GET against a server-relative
// path plus query (e.g. "/api/v1/builds/7/events?from=42") and returns
// the open response body. No retry loop runs here: transient failures —
// network errors and gateway-class statuses — report true from
// IsTransient so a caller holding its own resume cursor (the feed
// gateway) can reconnect where it left off; application errors come
// back as *api.Error. The caller owns the body.
func (p *Platform) OpenStream(ctx context.Context, pathQuery string) (io.ReadCloser, error) {
	ref, err := url.Parse(pathQuery)
	if err != nil {
		return nil, fmt.Errorf("remote: parsing stream path %q: %w", pathQuery, err)
	}
	return p.stream(ctx, p.base.ResolveReference(ref).String())
}

// IsTransient reports whether err is a retry-worthy transport failure
// rather than an application error: a network error, a gateway-class
// response (502/503/504) that burned through the retry budget and came
// back as its *api.Error envelope, or the server's typed 503
// peer_unavailable rejection (the target vantage point lives on a
// federated peer that is expected back within a heartbeat).
func IsTransient(err error) bool {
	var te *transientErr
	if errors.As(err, &te) {
		return true
	}
	var ae *api.Error
	return errors.As(err, &ae) && transientStatus(ae.HTTPStatus())
}

// getBytes fetches a whole resource (artifacts), retrying transient
// failures with the client's backoff policy.
func (p *Platform) getBytes(ctx context.Context, u string) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for attempt := 1; attempt <= p.retry.Attempts; attempt++ {
		if attempt > 1 {
			if !p.retrySleep(ctx, attempt-1) {
				break
			}
			p.requestRetries.Add(1)
		}
		rc, err := p.stream(ctx, u)
		if err != nil {
			var te *transientErr
			if !errors.As(err, &te) {
				return nil, err // application error: retrying cannot help
			}
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			lastErr = err // connection died mid-body
			continue
		}
		return data, nil
	}
	return nil, lastErr
}

// Nodes lists the server's vantage points with their devices and
// health states.
func (p *Platform) Nodes(ctx context.Context) ([]api.NodeInfo, error) {
	var out []api.NodeInfo
	err := p.doJSON(ctx, http.MethodGet, p.url("/api/v1/nodes"), nil, &out)
	return out, err
}

// NodeDetail fetches one vantage point's lifecycle snapshot: health
// state, heartbeat age, drain flag, leased and queued builds.
func (p *Platform) NodeDetail(ctx context.Context, name string) (api.NodeDetail, error) {
	var out api.NodeDetail
	err := p.doJSON(ctx, http.MethodGet, p.url("/api/v1/nodes/%s", name), nil, &out)
	return out, err
}

// WorkloadNames lists the server's registered workloads.
func (p *Platform) WorkloadNames(ctx context.Context) ([]string, error) {
	var out []string
	err := p.doJSON(ctx, http.MethodGet, p.url("/api/v1/workloads"), nil, &out)
	return out, err
}

// BuildStatus fetches one build's wire status.
func (p *Platform) BuildStatus(ctx context.Context, build int) (api.BuildStatus, error) {
	var out api.BuildStatus
	err := p.doJSON(ctx, http.MethodGet, p.url("/api/v1/builds/%d", build), nil, &out)
	return out, err
}

// Artifact fetches one workspace artifact's raw bytes, retrying
// transient failures.
func (p *Platform) Artifact(ctx context.Context, build int, name string) ([]byte, error) {
	return p.getBytes(ctx, p.url("/api/v1/builds/%d/artifacts/%s", build, name))
}

// Analytics runs a server-side trace query over a finished build's
// stored trace: windowed aggregates (mean/min/max/quantiles/energy)
// computed where the artifact lives, so a dashboard fetches kilobytes
// of summaries instead of the whole trace. A zero q asks for every
// field, no bucketing, the default trace artifact.
func (p *Platform) Analytics(ctx context.Context, build int, q api.AnalyticsQuery) (api.AnalyticsResult, error) {
	vals := url.Values{}
	if q.WindowNS > 0 {
		vals.Set("window", time.Duration(q.WindowNS).String())
	}
	if len(q.Fields) > 0 {
		vals.Set("fields", strings.Join(q.Fields, ","))
	}
	if q.Artifact != "" {
		vals.Set("artifact", q.Artifact)
	}
	u := p.url("/api/v1/builds/%d/analytics", build)
	if len(vals) > 0 {
		u += "?" + vals.Encode()
	}
	var out api.AnalyticsResult
	err := p.doJSON(ctx, http.MethodGet, u, nil, &out)
	return out, err
}

// StartExperiment submits a declarative spec and returns a live
// session handle — the remote counterpart of
// core.Platform.StartExperiment. Observers receive phase transitions
// and live samples streamed from the server; cancelling ctx cancels
// the remote build.
func (p *Platform) StartExperiment(ctx context.Context, spec api.ExperimentSpec, obs ...core.Observer) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resp api.SubmitResponse
	if err := p.doJSON(ctx, http.MethodPost, p.url("/api/v1/experiments"), spec, &resp); err != nil {
		return nil, err
	}
	return p.followBuild(ctx, resp.Build, spec.Node, spec.Device, obs), nil
}

// RunExperiment is the blocking shorthand: submit, stream, wait.
func (p *Platform) RunExperiment(ctx context.Context, spec api.ExperimentSpec, obs ...core.Observer) (*core.Result, error) {
	s, err := p.StartExperiment(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx)
}

// StartCampaign submits a campaign and returns a handle over its
// builds. The server fans the runs out across vantage points through
// its scheduler; each build gets its own event/sample streams.
func (p *Platform) StartCampaign(ctx context.Context, spec api.CampaignSpec, obs ...core.Observer) (*Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resp api.CampaignResponse
	if err := p.doJSON(ctx, http.MethodPost, p.url("/api/v1/campaigns"), spec, &resp); err != nil {
		return nil, err
	}
	c := &Campaign{p: p, ID: resp.Campaign, done: make(chan struct{})}
	for i, build := range resp.Builds {
		exp := spec.Experiments[i]
		c.sessions = append(c.sessions, p.followBuild(ctx, build, exp.Node, exp.Device, obs))
	}
	go func() {
		for _, s := range c.sessions {
			<-s.Done()
		}
		close(c.done)
	}()
	return c, nil
}

// Session is a handle to one in-flight remote build. It satisfies the
// same Wait/Cancel/Done/Phase session shape as core.Session.
type Session struct {
	p      *Platform
	build  int
	node   string
	device string
	obs    []core.Observer

	done chan struct{}

	mu        sync.Mutex
	phase     core.Phase
	doneEvent *core.PhaseChange
	agg       *samples.StreamSummary
	live      samples.LiveSummary
	res       *core.Result
	err       error
	canceled  bool
	failovers int
	lastRetry string
}

// followBuild attaches streams to a submitted build and returns its
// session.
func (p *Platform) followBuild(ctx context.Context, build int, node, device string, obs []core.Observer) *Session {
	// Streams live on their own context: they must outlast the submit
	// ctx's happy path and end when the build does. The submit ctx is
	// still honored for cancellation semantics below.
	sctx, scancel := context.WithCancel(context.Background())
	s := &Session{
		p:      p,
		build:  build,
		node:   node,
		device: device,
		obs:    obs,
		done:   make(chan struct{}),
		agg:    samples.NewStreamSummary(),
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.eventLoop(sctx) }()
	go func() { defer wg.Done(); s.sampleLoop(sctx) }()
	go func() {
		wg.Wait()
		s.finalize(sctx)
		scancel()
		close(s.done)
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Cancel()
			case <-s.done:
			}
		}()
	}
	return s
}

// Build reports the server-side build id backing this session.
func (s *Session) Build() int { return s.build }

// Done returns a channel closed when the remote run has finished and
// the result (or error) is available. Every accepted sample and phase
// event is delivered to observers before Done closes, with the
// terminal PhaseDone event last — the same contract as core.Session.
func (s *Session) Done() <-chan struct{} { return s.done }

// Phase reports the latest phase observed on the event stream.
func (s *Session) Phase() core.Phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phase
}

// Failovers reports how many scheduler failover events the session has
// observed on its event stream: each one means the build's vantage
// point was lost and the server requeued the run (on the same node
// once it returns, or a fallback node). The last failover's reason is
// the second return.
func (s *Session) Failovers() (int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failovers, s.lastRetry
}

// Live reports the client-side streaming summary of the live samples
// received so far (mean/P50/P95/charge over the live feed's cadence —
// an estimate of the monitor-side summary a local session exposes).
func (s *Session) Live() samples.LiveSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Result reports the outcome once Done is closed ((nil, nil) before).
func (s *Session) Result() (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// Cancel asks the server to abort the build (queued: dropped from the
// queue; running: the measurement session tears down at the earliest
// safe point). Idempotent; the result still arrives through Wait with
// an error matching core.ErrCanceled.
func (s *Session) Cancel() {
	s.mu.Lock()
	already := s.canceled
	s.canceled = true
	s.mu.Unlock()
	if already {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Conflict means the build already finished — not an error here.
	// Cancel is idempotent server-side, so it retries like a GET.
	err := s.p.doJSONIdempotent(ctx, http.MethodPost, s.p.url("/api/v1/builds/%d/cancel", s.build), nil, nil)
	var apiErr *api.Error
	if err != nil && errors.As(err, &apiErr) && apiErr.Code == api.CodeConflict {
		return
	}
}

// Wait blocks until the remote run completes and returns its outcome.
// Cancelling ctx cancels the build and still waits for its teardown,
// mirroring core.Session.Wait.
func (s *Session) Wait(ctx context.Context) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		s.Cancel()
		<-s.done
	}
	return s.Result()
}

// streamCheck is the stream loops' decision point after a failed open
// or a disconnect: fetch the build status and report whether the loop
// should stop (terminal state, or the server unreachable — finalize
// resolves the real state). It also detects a server that restarted
// and recovered the build: each recovery hands the build a fresh feed
// and bumps its feed_epoch, so whenever the epoch moves past what the
// caller has seen, its resume cursor belongs to an abandoned feed and
// must reset — on every restart, not just the first.
func (p *Platform) streamCheck(ctx context.Context, build int, seenEpoch *int) (stop, reset bool) {
	st, err := p.BuildStatus(ctx, build)
	if err != nil {
		return true, false
	}
	switch st.State {
	case "success", "failure", "aborted", api.StateExpired:
		return true, false
	}
	if st.FeedEpoch > *seenEpoch {
		*seenEpoch = st.FeedEpoch
		return false, true
	}
	return false, false
}

// healthyConn reports whether a finished connection attempt counts as
// a fresh start for the consecutive-failure budget: it delivered data,
// or it stayed up long enough that the drop is a new incident rather
// than a continuation of the same outage. Without this, idle-phase
// streams severed by proxies every few minutes would burn the budget
// cumulatively over a perfectly healthy run.
func healthyConn(progressed bool, opened time.Time) bool {
	return progressed || time.Since(opened) > 5*time.Second
}

// runStream is the shared replay-plus-follow driver behind eventLoop,
// sampleLoop and the federation relay: open the stream at the
// consumer's resume cursor, let consume drain it (reporting whether
// anything arrived), and on disconnect decide between stopping (build
// terminal), resetting the consumer (the server restarted — feed epoch
// moved), and retrying within the consecutive-failure budget. The
// consumers differ only in how they decode records and what a reset
// clears.
func (p *Platform) runStream(ctx context.Context, build int, path string, cursor func() int, reset func(), consume func(io.Reader) bool) {
	failures := 0
	seenEpoch := 0
	first := true
	for {
		if !first {
			p.streamReconnects.Add(1)
		}
		first = false
		opened := time.Now()
		rc, err := p.stream(ctx, p.url(path, build)+fmt.Sprintf("?from=%d", cursor()))
		progressed := false
		if err == nil {
			progressed = consume(rc)
			rc.Close()
		}
		if ctx.Err() != nil {
			return
		}
		stop, rst := p.streamCheck(ctx, build, &seenEpoch)
		if stop {
			return
		}
		if rst {
			p.epochResets.Add(1)
			reset()
		}
		if healthyConn(progressed, opened) {
			failures = 0
		}
		failures++
		if failures >= p.retry.Attempts || !p.retrySleep(ctx, failures) {
			return
		}
	}
}

// eventLoop streams NDJSON phase events, forwarding them to observers
// as core.PhaseChange. A dropped connection resumes from the last seen
// Seq via the ?from= cursor, with the client's backoff policy between
// reconnects; a stream that ends while the server reports the build
// still running is a loss, not a finish. The terminal PhaseDone event
// is withheld and delivered by finalize, after the sample stream has
// drained.
func (s *Session) eventLoop(ctx context.Context) {
	cursor := 0
	s.p.runStream(ctx, s.build, "/api/v1/builds/%d/events",
		func() int { return cursor },
		func() { cursor = 0 },
		func(r io.Reader) bool {
			dec := json.NewDecoder(r)
			progressed := false
			for {
				var ev api.BuildEvent
				if err := dec.Decode(&ev); err != nil {
					return progressed
				}
				progressed = true
				cursor = ev.Seq + 1
				s.handleEvent(ev)
			}
		})
}

// handleEvent folds one wire event into the session and observers.
func (s *Session) handleEvent(ev api.BuildEvent) {
	if ev.Phase == api.EventFailover {
		// Scheduler retry transition, not an experiment phase: the
		// node was lost and the build is being requeued.
		s.mu.Lock()
		s.failovers++
		s.lastRetry = ev.Error
		s.mu.Unlock()
		return
	}
	phase, ok := core.PhaseFromString(ev.Phase)
	if !ok {
		return // newer server: skip unknown phases
	}
	change := core.PhaseChange{
		Node:   ev.Node,
		Device: ev.Device,
		Phase:  phase,
		At:     time.Unix(0, ev.AtNS),
		Step:   ev.Step,
	}
	if ev.Error != "" {
		change.Err = errors.New(ev.Error)
	}
	s.mu.Lock()
	if phase > s.phase {
		s.phase = phase
	}
	if phase == core.PhaseDone {
		s.doneEvent = &change
	}
	s.mu.Unlock()
	if phase != core.PhaseDone {
		for _, o := range s.obs {
			o.OnPhase(change)
		}
	}
}

// sampleLoop streams binary sample frames, re-aggregates the live
// summary client-side and forwards each point to observers. Like
// eventLoop it resumes a dropped connection via the sample stream's
// ?from= cursor (counting samples received), so a reconnect neither
// replays points into the aggregate twice nor skips the gap. If the
// server restarted and recovered the build, the rerun's samples are a
// fresh capture: the cursor AND the live aggregate reset, because the
// pre-crash samples belonged to an attempt the scheduler abandoned.
func (s *Session) sampleLoop(ctx context.Context) {
	cursor := 0
	s.p.runStream(ctx, s.build, "/api/v1/builds/%d/samples",
		func() int { return cursor },
		func() {
			cursor = 0
			s.agg = samples.NewStreamSummary()
			s.mu.Lock()
			s.live = samples.LiveSummary{}
			s.mu.Unlock()
		},
		func(r io.Reader) bool {
			br := bufio.NewReader(r)
			progressed := false
			for {
				pts, err := api.ReadSampleFrame(br)
				if err != nil {
					return progressed // io.EOF at a frame boundary is the clean end
				}
				progressed = true
				for _, pt := range pts {
					cursor++
					s.agg.Add(pt.AtNS, pt.CurrentMA)
					live := s.agg.Snapshot()
					s.mu.Lock()
					s.live = live
					s.mu.Unlock()
					smp := core.Sample{
						Node:      s.node,
						Device:    s.device,
						At:        time.Unix(0, pt.AtNS),
						CurrentMA: pt.CurrentMA,
						Live:      live,
					}
					for _, o := range s.obs {
						o.OnSample(smp)
					}
				}
			}
		})
}

// finalize runs after both streams end: resolve the terminal build
// state, reconstruct the Result from the workspace artifacts, and
// deliver the withheld PhaseDone event.
func (s *Session) finalize(ctx context.Context) {
	st, err := s.waitTerminal(ctx)
	var res *core.Result
	var runErr error
	switch {
	case err != nil:
		runErr = err
	case st.State == "success":
		res, runErr = s.fetchResult(ctx, st)
	case st.State == "aborted":
		runErr = fmt.Errorf("%w: build %d aborted", core.ErrCanceled, s.build)
	case st.State == api.StateExpired:
		runErr = fmt.Errorf("remote: build %d expired from the server's retention window", s.build)
	default: // failure
		msg := st.Error
		if msg == "" {
			msg = "build " + st.State
		}
		switch {
		case st.Canceled:
			// Structured cancellation marker — never inferred from the
			// message text, which the wire contract does not promise.
			runErr = fmt.Errorf("%w: remote: %s", core.ErrCanceled, msg)
		case st.NodeLost:
			// Structured node-loss marker: the scheduler spent its
			// failover budget on dead vantage points.
			runErr = fmt.Errorf("%w: remote: %s", core.ErrNodeLost, msg)
		default:
			runErr = fmt.Errorf("remote: build %d failed: %s", s.build, msg)
		}
	}

	s.mu.Lock()
	s.res, s.err = res, runErr
	s.phase = core.PhaseDone
	doneEvent := s.doneEvent
	s.mu.Unlock()

	if doneEvent == nil {
		doneEvent = &core.PhaseChange{
			Node: s.node, Device: s.device,
			Phase: core.PhaseDone, At: time.Now(), Err: runErr,
		}
	}
	for _, o := range s.obs {
		o.OnPhase(*doneEvent)
	}
}

// waitTerminal polls the build status until it leaves the
// queued/running states. The streams normally end exactly at finish,
// so the first poll usually suffices; the retry loop covers stream
// teardown racing the state transition.
func (s *Session) waitTerminal(ctx context.Context) (api.BuildStatus, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.p.BuildStatus(ctx, s.build)
		if err != nil {
			return api.BuildStatus{}, err
		}
		switch st.State {
		case "success", "failure", "aborted", api.StateExpired:
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("remote: build %d still %s after streams closed", s.build, st.State)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// fetchResult reconstructs a *core.Result from the build's workspace:
// the lossless binary current trace plus the CPU CSVs.
func (s *Session) fetchResult(ctx context.Context, st api.BuildStatus) (*core.Result, error) {
	cur, err := s.Artifact(ctx, core.ArtifactCurrentTrace)
	if err != nil {
		return nil, fmt.Errorf("remote: fetching current trace: %w", err)
	}
	current, err := trace.ReadBinary(bytes.NewReader(cur))
	if err != nil {
		return nil, fmt.Errorf("remote: decoding current trace: %w", err)
	}
	var t0 time.Time
	if current.Len() > 0 {
		t0 = current.At(0).T
	}
	readCSV := func(name, series, unit string) (*trace.Series, error) {
		data, err := s.Artifact(ctx, name)
		if err != nil {
			return nil, err
		}
		return trace.ReadCSV(bytes.NewReader(data), series, unit, t0)
	}
	devCPU, err := readCSV(core.ArtifactDeviceCPU, "device-cpu", "percent")
	if err != nil {
		return nil, fmt.Errorf("remote: fetching device CPU trace: %w", err)
	}
	ctlCPU, err := readCSV(core.ArtifactControllerCPU, "controller-cpu", "percent")
	if err != nil {
		return nil, fmt.Errorf("remote: fetching controller CPU trace: %w", err)
	}
	res := &core.Result{
		Current:       current,
		DeviceCPU:     devCPU,
		ControllerCPU: ctlCPU,
		EnergyMAH:     current.EnergyMAH(),
	}
	if st.Summary != nil {
		res.Duration = time.Duration(st.Summary.DurationNS)
		res.MirrorUploadBytes = st.Summary.MirrorUploadBytes
	}
	return res, nil
}

// Artifact fetches one of this build's workspace artifacts.
func (s *Session) Artifact(ctx context.Context, name string) ([]byte, error) {
	return s.p.Artifact(ctx, s.build, name)
}

// Campaign is a handle to an in-flight remote campaign: one session
// per submitted experiment, index-aligned with the spec.
type Campaign struct {
	p        *Platform
	ID       int
	sessions []*Session
	done     chan struct{}
}

// CampaignRun is one experiment's outcome within a remote campaign.
type CampaignRun struct {
	Index  int
	Build  int
	Node   string
	Device string
	Result *core.Result
	Err    error
}

// Sessions returns the campaign's per-build sessions in spec order.
func (c *Campaign) Sessions() []*Session { return c.sessions }

// Done returns a channel closed when every run has finished.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Cancel aborts every build in the campaign.
func (c *Campaign) Cancel() {
	for _, s := range c.sessions {
		s.Cancel()
	}
}

// Runs snapshots the per-run outcomes in spec order (final only once
// Done is closed).
func (c *Campaign) Runs() []CampaignRun {
	out := make([]CampaignRun, len(c.sessions))
	for i, s := range c.sessions {
		res, err := s.Result()
		out[i] = CampaignRun{
			Index: i, Build: s.build,
			Node: s.node, Device: s.device,
			Result: res, Err: err,
		}
	}
	return out
}

// Wait blocks until every run completes and returns the aggregated
// outcomes. Cancelling ctx cancels the remaining builds, mirroring
// core.CampaignSession.Wait.
func (c *Campaign) Wait(ctx context.Context) ([]CampaignRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-c.done:
		return c.Runs(), nil
	case <-ctx.Done():
		c.Cancel()
		<-c.done
		return c.Runs(), ctx.Err()
	}
}
