package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"batterylab/internal/api"
)

// Federation relay: the client-side half of cross-server build
// routing. When an access server's scheduler places a build on a
// vantage point advertised by a federated peer, it hands the wire spec
// to Relay (wired in as accessserver.PeerRelay by the daemon), which
// submits it to the peer as a plain v1 experiment, streams the remote
// build's events and samples back into the home feed, and returns the
// terminal status. Nothing here is federation-specific protocol — it
// is the same v1 surface any remote client speaks, authenticated with
// the shared cluster token instead of a user token.

// RelaySink receives the relayed build's wire records as they stream
// from the executing peer, and its terminal artifacts once the remote
// build succeeds. It is structurally identical to
// accessserver.PeerSink, so an accessserver sink value passes straight
// through without an adapter.
type RelaySink interface {
	Event(e api.BuildEvent)
	Sample(p api.SamplePoint)
	Artifact(name string, data []byte)
}

// Relay runs one experiment spec on the peer access server at peerURL
// on behalf of a home server: submit, stream events and samples into
// sink until the remote build settles, fetch and return its terminal
// status. A non-nil error means the relay itself broke — submission
// rejected (*api.Error), connection lost, ctx canceled — not that the
// experiment failed; failure comes back as a status with State
// "failure". Cancelling ctx cancels the remote build (best effort)
// before returning.
func Relay(ctx context.Context, peerURL, token string, spec api.ExperimentSpec, sink RelaySink) (*api.BuildStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := Dial(peerURL, token)
	if err != nil {
		return nil, err
	}
	var resp api.SubmitResponse
	if err := p.doJSON(ctx, http.MethodPost, p.url("/api/v1/experiments"), spec, &resp); err != nil {
		return nil, err
	}
	return p.followRelay(ctx, resp.Build, sink)
}

// followRelay attaches the relay streams to a submitted peer build and
// resolves its terminal status.
func (p *Platform) followRelay(ctx context.Context, build int, sink RelaySink) (*api.BuildStatus, error) {
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.relayEvents(sctx, build, sink) }()
	go func() { defer wg.Done(); p.relaySamples(sctx, build, sink) }()
	wg.Wait()

	if ctx.Err() != nil {
		// The home scheduler reclaimed the attempt (abort, failover):
		// propagate the cancel so the peer tears the measurement down
		// instead of running an orphan. Best effort on a fresh context —
		// the canceled one cannot carry a request.
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		p.doJSONIdempotent(cctx, http.MethodPost, p.url("/api/v1/builds/%d/cancel", build), nil, nil)
		return nil, ctx.Err()
	}
	st, err := p.relayTerminal(ctx, build)
	if err != nil {
		return nil, err
	}
	if st.State == "success" {
		// The home server serves this build's artifact and analytics
		// reads from its own workspace: copy the peer's terminal
		// artifacts home before reporting success. A peer that vanishes
		// here is a relay failure — the home failover budget decides.
		if err := p.relayArtifacts(ctx, build, sink); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// relayArtifacts copies the remote build's workspace (current trace,
// CPU CSVs, logs) into the sink, byte for byte.
func (p *Platform) relayArtifacts(ctx context.Context, build int, sink RelaySink) error {
	var names []string
	if err := p.doJSONIdempotent(ctx, http.MethodGet, p.url("/api/v1/builds/%d/artifacts", build), nil, &names); err != nil {
		return fmt.Errorf("remote: listing relayed build %d's artifacts: %w", build, err)
	}
	for _, name := range names {
		data, err := p.Artifact(ctx, build, name)
		if err != nil {
			return fmt.Errorf("remote: fetching relayed artifact %q: %w", name, err)
		}
		sink.Artifact(name, data)
	}
	return nil
}

// relayEvents streams the peer build's NDJSON events into the sink,
// resuming a dropped connection from the last seen Seq. An epoch reset
// (the peer restarted and recovered the build) restarts the cursor:
// the recovered build re-executes, so its feed is a fresh capture.
func (p *Platform) relayEvents(ctx context.Context, build int, sink RelaySink) {
	cursor := 0
	p.runStream(ctx, build, "/api/v1/builds/%d/events",
		func() int { return cursor },
		func() { cursor = 0 },
		func(r io.Reader) bool {
			dec := json.NewDecoder(r)
			progressed := false
			for {
				var ev api.BuildEvent
				if err := dec.Decode(&ev); err != nil {
					return progressed
				}
				progressed = true
				cursor = ev.Seq + 1
				sink.Event(ev)
			}
		})
}

// relaySamples streams the peer build's binary sample frames into the
// sink, counting points for the resume cursor.
func (p *Platform) relaySamples(ctx context.Context, build int, sink RelaySink) {
	cursor := 0
	p.runStream(ctx, build, "/api/v1/builds/%d/samples",
		func() int { return cursor },
		func() { cursor = 0 },
		func(r io.Reader) bool {
			br := bufio.NewReader(r)
			progressed := false
			for {
				pts, err := api.ReadSampleFrame(br)
				if err != nil {
					return progressed
				}
				progressed = true
				for _, pt := range pts {
					cursor++
					sink.Sample(pt)
				}
			}
		})
}

// relayTerminal polls the peer build until it leaves the queued/running
// states. The streams end exactly at finish in the common case, so the
// first poll usually answers; the loop covers stream teardown racing
// the state transition. An expired or still-running build is a relay
// failure — the home scheduler's failover budget decides what happens.
func (p *Platform) relayTerminal(ctx context.Context, build int) (*api.BuildStatus, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := p.BuildStatus(ctx, build)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "success", "failure", "aborted":
			return &st, nil
		case api.StateExpired:
			return nil, fmt.Errorf("remote: relayed build %d expired on the peer before its status was read", build)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("remote: relayed build %d still %s after its streams closed", build, st.State)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
