package browser

import (
	"time"

	"batterylab/internal/automation"
)

// NewsSites returns the 10 popular news websites the paper's workload
// visits sequentially.
func NewsSites() []string {
	return []string{
		"bbc.com", "cnn.com", "nytimes.com", "theguardian.com",
		"reuters.com", "washingtonpost.com", "foxnews.com",
		"aljazeera.com", "bloomberg.com", "news.yahoo.com",
	}
}

// WorkloadOptions tunes the §4.2 browsing workload.
type WorkloadOptions struct {
	// Pages visited in order. Defaults to NewsSites().
	Pages []string
	// DwellTime is the fixed wait after entering a URL, "emulating a
	// typical page load time" (paper: 6 s).
	DwellTime time.Duration
	// Scrolls is the number of scroll operations per page, alternating
	// down/up (paper: "multiple" — default 8).
	Scrolls int
	// ScrollGap is the pause between scrolls.
	ScrollGap time.Duration
	// SkipClean leaves browser state in place (the clean is normally
	// done over ADB-USB *before* the measurement window).
	SkipClean bool
}

func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if len(o.Pages) == 0 {
		o.Pages = NewsSites()
	}
	if o.DwellTime == 0 {
		o.DwellTime = 6 * time.Second
	}
	if o.Scrolls == 0 {
		o.Scrolls = 8
	}
	if o.ScrollGap == 0 {
		o.ScrollGap = 2 * time.Second
	}
	return o
}

// BuildWorkload assembles the paper's browser workload as an automation
// script for the given driver and browser package: clean state and setup,
// then for each page type the URL, wait the page-load budget, and
// interact with scroll ups/downs. The returned script's TotalWait is the
// experiment's scripted duration.
func BuildWorkload(drv automation.Driver, pkg string, opts WorkloadOptions) *automation.Script {
	opts = opts.withDefaults()
	s := automation.NewScript("browse/" + pkg)

	if !opts.SkipClean {
		s.Add("pm-clear", 500*time.Millisecond, func() error {
			_, err := drv.ClearApp(pkg)
			return err
		})
	}
	s.Add("launch", 3*time.Second, func() error {
		_, err := drv.LaunchApp(pkg)
		return err
	})
	for _, page := range opts.Pages {
		page := page
		s.Add("navigate:"+page, opts.DwellTime, func() error {
			_, err := drv.TypeText(page)
			return err
		})
		for i := 0; i < opts.Scrolls; i++ {
			down := i%2 == 0
			s.Add("scroll", opts.ScrollGap, func() error {
				_, err := drv.Scroll(down)
				return err
			})
		}
	}
	s.Add("stop", time.Second, func() error {
		_, err := drv.StopApp(pkg)
		return err
	})
	return s
}
