// Package browser models the four Android browsers of the paper's
// demonstration study — Chrome, Firefox, Edge and Brave (§4.2) — and the
// page-visit workload that drives them. Each browser is a device.App
// whose CPU, network and display behaviour is calibrated so the study's
// findings reproduce: Brave draws the least battery (no ads, least CPU
// pressure), Firefox the most, and Chrome's energy dips at the Japanese
// VPN exit where its ad payloads shrink by ~20 % (§4.3).
package browser

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/netem"
	"batterylab/internal/rng"
	"batterylab/internal/simclock"
)

// Net is the network the browser fetches over — satisfied by *wifi.AP.
type Net interface {
	Download(d *device.Device, n int64) (time.Duration, error)
	Path() (*netem.Path, error)
}

// RegionProvider reports the current network-visible country code
// ("GB", "JP", ...); wired to the VPN client's active exit.
type RegionProvider func() string

// Profile is one browser's calibrated behaviour.
type Profile struct {
	// Name is the browser's display name.
	Name string
	// Package is the Android package id.
	Package string
	// LoadCPU/LoadSigma: process utilization (%) while rendering a page.
	LoadCPU, LoadSigma float64
	// IdleCPU/IdleSigma: utilization while the page sits loaded.
	IdleCPU, IdleSigma float64
	// ScrollCPU: utilization during scroll bursts.
	ScrollCPU float64
	// MemMB is resident memory once warmed up.
	MemMB float64
	// BlocksAds: Brave ships an ad/tracker blocker.
	BlocksAds bool
	// AdCPU: extra utilization from ad rendering/refresh while a page
	// with ads is open.
	AdCPU float64
	// RegionAdScale scales ad payload size per country code; missing
	// regions default to 1. Chrome's JP entry captures the paper's
	// observed 20 % ad-size reduction.
	RegionAdScale map[string]float64
	// SetupSeconds: first-launch setup after a profile wipe (accepting
	// conditions, sign-in prompts...).
	SetupSeconds float64
}

// Profiles returns the four study browsers. The calibration targets are
// the paper's Fig. 3 ordering and Fig. 4 CPU medians (Brave ≈ 12 %,
// Chrome ≈ 20 % total device CPU).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "Brave", Package: "com.brave.browser",
			LoadCPU: 37, LoadSigma: 6, IdleCPU: 7.2, IdleSigma: 1.8, ScrollCPU: 21,
			MemMB: 285, BlocksAds: true, AdCPU: 0, SetupSeconds: 2,
		},
		{
			Name: "Chrome", Package: "com.android.chrome",
			LoadCPU: 54, LoadSigma: 8, IdleCPU: 13.5, IdleSigma: 2.6, ScrollCPU: 30,
			MemMB: 320, AdCPU: 4.2, SetupSeconds: 4,
			RegionAdScale: map[string]float64{"JP": 0.8},
		},
		{
			Name: "Edge", Package: "com.microsoft.emmx",
			LoadCPU: 58, LoadSigma: 8, IdleCPU: 15.5, IdleSigma: 3.0, ScrollCPU: 33,
			MemMB: 330, AdCPU: 4.2, SetupSeconds: 4,
		},
		{
			Name: "Firefox", Package: "org.mozilla.firefox",
			LoadCPU: 66, LoadSigma: 9, IdleCPU: 18.5, IdleSigma: 3.4, ScrollCPU: 37,
			MemMB: 360, AdCPU: 4.6, SetupSeconds: 3,
		},
	}
}

// FindProfile looks a profile up by name.
func FindProfile(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("browser: no profile %q", name)
}

// Page payload model (bytes). Ads load alongside content and keep
// refreshing while the page is open.
const (
	contentBytes    = 1_800_000
	adBytes         = 1_100_000
	adRefreshBytes  = 60_000
	adRefreshPeriod = 2 * time.Second
	lazyLoadBytes   = 120_000 // extra content pulled in by scrolling
)

// Browser is one installed browser app instance.
type Browser struct {
	prof   Profile
	net    Net
	region RegionProvider

	mu          sync.Mutex
	dev         *device.Device
	proc        *device.Process
	rnd         *rng.RNG
	needsSetup  bool
	pageOpen    bool
	loadTimer   simclock.Timer
	adTicker    *simclock.Ticker
	pagesLoaded int
}

// New returns a browser instance. net may be nil (offline rendering of
// cached pages: loads still cost CPU but move no bytes). region may be
// nil (defaults to "GB", the first vantage point's location).
func New(prof Profile, net Net, region RegionProvider) *Browser {
	if region == nil {
		region = func() string { return "GB" }
	}
	return &Browser{prof: prof, net: net, region: region, needsSetup: true}
}

// Profile reports the browser's profile.
func (b *Browser) Profile() Profile { return b.prof }

// PackageName implements device.App.
func (b *Browser) PackageName() string { return b.prof.Package }

// PagesLoaded reports how many navigations completed.
func (b *Browser) PagesLoaded() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pagesLoaded
}

// adScale reports the effective ad payload multiplier for the current
// region: zero when the browser blocks ads.
func (b *Browser) adScale() float64 {
	if b.prof.BlocksAds {
		return 0
	}
	if s, ok := b.prof.RegionAdScale[b.region()]; ok {
		return s
	}
	return 1
}

// Launch implements device.App.
func (b *Browser) Launch(d *device.Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.proc != nil {
		return nil // already running (warm relaunch)
	}
	b.dev = d
	if b.rnd == nil {
		b.rnd = rng.New(d.Config().Seed).Fork("browser/" + b.prof.Package)
	}
	b.proc = d.CPU().StartProcess(b.prof.Package)
	b.proc.SetMemMB(b.prof.MemMB)
	if b.needsSetup {
		// First-run setup: moderate CPU for SetupSeconds, then idle.
		b.proc.SetLoad(b.prof.LoadCPU*0.6, b.prof.LoadSigma)
		setup := time.Duration(b.prof.SetupSeconds * float64(time.Second))
		proc := b.proc
		d.Clock().AfterFunc(setup, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if b.proc == proc {
				proc.SetLoad(b.prof.IdleCPU, b.prof.IdleSigma)
			}
		})
		b.needsSetup = false
	} else {
		b.proc.SetLoad(b.prof.IdleCPU, b.prof.IdleSigma)
	}
	d.Framebuffer().SetActivity(4, 0.15) // UI chrome, blinking caret
	d.Logcat().Append(b.prof.Name, device.Info, "launched")
	return nil
}

// Stop implements device.App.
func (b *Browser) Stop(d *device.Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopLocked(d)
	return nil
}

func (b *Browser) stopLocked(d *device.Device) {
	if b.proc != nil {
		d.CPU().KillByName(b.prof.Package)
		b.proc = nil
	}
	if b.loadTimer != nil {
		b.loadTimer.Stop()
		b.loadTimer = nil
	}
	if b.adTicker != nil {
		b.adTicker.Stop()
		b.adTicker = nil
	}
	b.pageOpen = false
	d.Framebuffer().SetActivity(0, 0)
	d.Logcat().Append(b.prof.Name, device.Info, "stopped")
}

// ClearData implements device.App (pm clear): the next launch pays the
// first-run setup again, as the paper's scripts do before each workload.
func (b *Browser) ClearData(d *device.Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.proc != nil {
		b.stopLocked(d)
	}
	b.needsSetup = true
	b.pagesLoaded = 0
	return nil
}

// HandleInput implements device.App: typed text navigates, scrolls burst
// CPU and may lazy-load, keys are mostly ignored (ENTER commits an
// already-typed URL, a no-op here since text triggers the navigation).
func (b *Browser) HandleInput(d *device.Device, ev device.InputEvent) error {
	switch ev.Kind {
	case device.InputText:
		return b.navigate(d, ev.Text)
	case device.InputScroll:
		return b.scroll(d)
	default:
		return nil
	}
}

// navigate starts a page load: the full payload (content + region-scaled
// ads) is fetched, the render thread burns LoadCPU until the transfer
// and layout complete, then the page settles to the idle load with the
// ad engine refreshing periodically.
func (b *Browser) navigate(d *device.Device, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.proc == nil {
		return fmt.Errorf("browser: %s not running", b.prof.Name)
	}
	// Real pages vary run to run (editorial churn, ad auctions): jitter
	// the payload per navigation.
	scale := b.adScale()
	total := int64(b.rnd.Jitter(contentBytes, 0.12) + scale*b.rnd.Jitter(adBytes, 0.20))

	var xferDur time.Duration
	if b.net != nil {
		var err error
		xferDur, err = b.net.Download(d, total)
		if err != nil {
			return fmt.Errorf("browser: fetching %s: %w", url, err)
		}
	}
	// Render completes shortly after the bytes arrive; the paper's
	// scripts wait a fixed 6 s page-load budget.
	loadDur := xferDur + 700*time.Millisecond
	if loadDur > 10*time.Second {
		loadDur = 10 * time.Second
	}
	b.proc.SetLoad(b.prof.LoadCPU, b.prof.LoadSigma)
	d.Framebuffer().SetActivity(20, 0.8)
	d.Logcat().Append(b.prof.Name, device.Info, fmt.Sprintf("GET %s (%d bytes, ads x%.2f)", url, total, scale))

	proc := b.proc
	if b.loadTimer != nil {
		b.loadTimer.Stop()
	}
	b.loadTimer = d.Clock().AfterFunc(loadDur, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.proc != proc {
			return
		}
		proc.SetLoad(b.prof.IdleCPU+scale*b.prof.AdCPU, b.prof.IdleSigma)
		b.setDwellActivity(d, scale)
		b.pagesLoaded++
		b.pageOpen = true
	})

	// Ad engine: periodic refresh traffic while any page is open.
	if b.adTicker == nil && scale > 0 && b.net != nil {
		b.adTicker = simclock.NewTicker(d.Clock(), adRefreshPeriod, func(time.Time) {
			b.mu.Lock()
			open := b.pageOpen
			s := b.adScale()
			b.mu.Unlock()
			if open && s > 0 {
				b.net.Download(d, int64(s*adRefreshBytes))
			}
		})
	}
	return nil
}

// scroll bursts the render thread and repaints; occasionally it pulls
// lazy-loaded content.
func (b *Browser) scroll(d *device.Device) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.proc == nil {
		return fmt.Errorf("browser: %s not running", b.prof.Name)
	}
	scale := b.adScale()
	b.proc.SetLoad(b.prof.ScrollCPU, b.prof.LoadSigma*0.6)
	d.Framebuffer().SetActivity(35, 0.6)
	if b.net != nil && b.pageOpen {
		b.net.Download(d, int64(lazyLoadBytes+scale*adRefreshBytes))
	}
	proc := b.proc
	d.Clock().AfterFunc(1200*time.Millisecond, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.proc != proc {
			return
		}
		proc.SetLoad(b.prof.IdleCPU+scale*b.prof.AdCPU, b.prof.IdleSigma)
		b.setDwellActivity(d, scale)
	})
	return nil
}

// setDwellActivity picks the display change rate for an open, idle page:
// animated ads keep repainting; an ad-blocked page is nearly static.
func (b *Browser) setDwellActivity(d *device.Device, adScale float64) {
	if adScale > 0 {
		d.Framebuffer().SetActivity(6, 0.25)
	} else {
		d.Framebuffer().SetActivity(2, 0.1)
	}
}
