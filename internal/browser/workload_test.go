package browser

import (
	"testing"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/automation"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/usb"
	"batterylab/internal/wifi"
)

func workloadRig(t *testing.T) (*simclock.Virtual, *device.Device, automation.Driver, *Browser) {
	t.Helper()
	clk := simclock.NewVirtual()
	dev, err := device.New(clk, device.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hub := usb.NewHub(1)
	hub.Attach(0, dev)
	ap := wifi.NewAP("blab", wifi.ModeNAT)
	ap.Connect(dev)
	srv := adb.NewServer(hub, ap)
	srv.Register(dev)
	prof, _ := FindProfile("Chrome")
	b := New(prof, ap, nil)
	dev.Install(b)
	return clk, dev, automation.NewADBDriver(srv, dev.Serial()), b
}

func TestBuildWorkloadStructure(t *testing.T) {
	_, _, drv, _ := workloadRig(t)
	s := BuildWorkload(drv, "com.android.chrome", WorkloadOptions{
		Pages:   []string{"a.com", "b.com"},
		Scrolls: 3,
	})
	// clean + launch + 2×(navigate + 3 scrolls) + stop = 11 steps.
	if s.Len() != 11 {
		t.Fatalf("steps = %d, want 11", s.Len())
	}
	// Duration: 0.5 clean + 3 launch + 2×(6 dwell + 3×2 scroll) + 1 stop.
	want := 500*time.Millisecond + 3*time.Second + 2*(6*time.Second+3*2*time.Second) + time.Second
	if s.TotalWait() != want {
		t.Fatalf("total = %v, want %v", s.TotalWait(), want)
	}
}

func TestBuildWorkloadDefaults(t *testing.T) {
	_, _, drv, _ := workloadRig(t)
	s := BuildWorkload(drv, "com.android.chrome", WorkloadOptions{})
	// clean + launch + 10×(1 + 8) + stop.
	if s.Len() != 2+10*9+1 {
		t.Fatalf("steps = %d", s.Len())
	}
}

func TestBuildWorkloadSkipClean(t *testing.T) {
	_, _, drv, _ := workloadRig(t)
	with := BuildWorkload(drv, "x", WorkloadOptions{Pages: []string{"a"}, Scrolls: 1})
	without := BuildWorkload(drv, "x", WorkloadOptions{Pages: []string{"a"}, Scrolls: 1, SkipClean: true})
	if with.Len() != without.Len()+1 {
		t.Fatalf("SkipClean: %d vs %d", with.Len(), without.Len())
	}
}

func TestWorkloadEndToEnd(t *testing.T) {
	clk, dev, drv, b := workloadRig(t)
	s := BuildWorkload(drv, "com.android.chrome", WorkloadOptions{
		Pages:   []string{"bbc.com", "cnn.com", "reuters.com"},
		Scrolls: 4,
	})
	var done bool
	var doneErr error
	automation.NewExecutor(clk).Run(s, func(err error) { done, doneErr = true, err })
	clk.Advance(s.TotalWait() + 5*time.Second)
	if !done || doneErr != nil {
		t.Fatalf("done=%v err=%v", done, doneErr)
	}
	if b.PagesLoaded() != 3 {
		t.Fatalf("pages loaded = %d, want 3", b.PagesLoaded())
	}
	// The workload ends with a force-stop.
	if dev.Foreground() != "" {
		t.Fatalf("foreground = %q after workload", dev.Foreground())
	}
	// Bytes were fetched for every page.
	_, rx := dev.WiFi().Counters()
	if rx < 3*contentBytes {
		t.Fatalf("rx = %d", rx)
	}
}

func TestNewsSitesList(t *testing.T) {
	sites := NewsSites()
	if len(sites) != 10 {
		t.Fatalf("sites = %d", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if s == "" || seen[s] {
			t.Fatalf("bad site list: %v", sites)
		}
		seen[s] = true
	}
}
