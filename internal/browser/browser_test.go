package browser

import (
	"testing"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/wifi"
)

type rig struct {
	clk *simclock.Virtual
	dev *device.Device
	ap  *wifi.AP
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	dev, err := device.New(clk, device.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap := wifi.NewAP("blab", wifi.ModeNAT)
	if err := ap.Connect(dev); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, dev: dev, ap: ap}
}

func installBrowser(t *testing.T, r *rig, name string, region RegionProvider) *Browser {
	t.Helper()
	prof, err := FindProfile(name)
	if err != nil {
		t.Fatal(err)
	}
	b := New(prof, r.ap, region)
	if err := r.dev.Install(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Package == "" || p.LoadCPU <= p.IdleCPU {
			t.Fatalf("degenerate profile %+v", p)
		}
	}
	for _, want := range []string{"Brave", "Chrome", "Edge", "Firefox"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
	if _, err := FindProfile("Netscape"); err == nil {
		t.Fatal("unknown profile found")
	}
}

func TestBraveBlocksAdsChromeDoesNot(t *testing.T) {
	brave, _ := FindProfile("Brave")
	chrome, _ := FindProfile("Chrome")
	if !brave.BlocksAds || chrome.BlocksAds {
		t.Fatal("ad blocking flags wrong")
	}
	if chrome.RegionAdScale["JP"] != 0.8 {
		t.Fatal("Chrome JP ad scale missing")
	}
}

func TestCPUOrderingAcrossProfiles(t *testing.T) {
	// The paper's Fig. 4: Brave's CPU pressure < Chrome's. Idle+ad load
	// ordering across all four: Brave < Chrome <= Edge <= Firefox.
	var idle []float64
	for _, name := range []string{"Brave", "Chrome", "Edge", "Firefox"} {
		p, _ := FindProfile(name)
		idle = append(idle, p.IdleCPU+p.AdCPU)
	}
	for i := 1; i < len(idle); i++ {
		if idle[i] < idle[i-1] {
			t.Fatalf("idle ordering violated: %v", idle)
		}
	}
}

func TestNavigateLifecycle(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Chrome", nil)
	if err := r.dev.LaunchApp(b.PackageName()); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(5 * time.Second) // past first-run setup

	if err := r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "bbc.com"}); err != nil {
		t.Fatal(err)
	}
	// During load: high CPU.
	r.clk.Advance(500 * time.Millisecond)
	loadUtil := r.dev.CPU().UtilAt(r.clk.Now())
	if loadUtil < 35 {
		t.Fatalf("load CPU = %.1f, want high", loadUtil)
	}
	// After the 6 s budget: settled to idle + ads.
	r.clk.Advance(8 * time.Second)
	idleUtil := r.dev.CPU().UtilAt(r.clk.Now())
	if idleUtil > loadUtil-15 {
		t.Fatalf("idle CPU %.1f not far below load %.1f", idleUtil, loadUtil)
	}
	if b.PagesLoaded() != 1 {
		t.Fatalf("pages = %d", b.PagesLoaded())
	}
	// Bytes moved: content + ads.
	_, rx := r.dev.WiFi().Counters()
	if rx < contentBytes {
		t.Fatalf("rx = %d, want > content", rx)
	}
}

func TestBraveFetchesFewerBytesThanChrome(t *testing.T) {
	load := func(name string) int64 {
		r := newRig(t)
		b := installBrowser(t, r, name, nil)
		r.dev.LaunchApp(b.PackageName())
		r.clk.Advance(5 * time.Second)
		r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "bbc.com"})
		r.clk.Advance(10 * time.Second)
		_, rx := r.dev.WiFi().Counters()
		return rx
	}
	braveRx := load("Brave")
	chromeRx := load("Chrome")
	if braveRx >= chromeRx {
		t.Fatalf("Brave rx %d should be < Chrome rx %d (ads blocked)", braveRx, chromeRx)
	}
	if float64(chromeRx-braveRx) < 0.8*adBytes {
		t.Fatalf("ad byte gap too small: %d", chromeRx-braveRx)
	}
}

func TestChromeJapanAdReduction(t *testing.T) {
	load := func(region string) int64 {
		r := newRig(t)
		b := installBrowser(t, r, "Chrome", func() string { return region })
		r.dev.LaunchApp(b.PackageName())
		r.clk.Advance(5 * time.Second)
		r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "bbc.com"})
		r.clk.Advance(10 * time.Second)
		_, rx := r.dev.WiFi().Counters()
		return rx
	}
	gb := load("GB")
	jp := load("JP")
	if jp >= gb {
		t.Fatalf("JP rx %d should be < GB rx %d", jp, gb)
	}
	wantGap := int64(0.2 * adBytes * 0.8) // at least most of the 20% ad cut
	if gb-jp < wantGap {
		t.Fatalf("JP ad reduction too small: %d", gb-jp)
	}
}

func TestScrollBurstsAndSettles(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Brave", nil)
	r.dev.LaunchApp(b.PackageName())
	r.clk.Advance(5 * time.Second)
	r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "x.com"})
	r.clk.Advance(8 * time.Second)

	idle := r.dev.CPU().UtilAt(r.clk.Now())
	r.dev.Input(device.InputEvent{Kind: device.InputScroll, ScrollDown: true})
	r.clk.Advance(300 * time.Millisecond)
	burst := r.dev.CPU().UtilAt(r.clk.Now())
	if burst < idle+8 {
		t.Fatalf("scroll burst %.1f not above idle %.1f", burst, idle)
	}
	r.clk.Advance(3 * time.Second)
	settled := r.dev.CPU().UtilAt(r.clk.Now())
	if settled > burst-8 {
		t.Fatalf("scroll did not settle: %.1f vs burst %.1f", settled, burst)
	}
}

func TestNavigateNotRunning(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Brave", nil)
	if err := b.HandleInput(r.dev, device.InputEvent{Kind: device.InputText, Text: "x"}); err == nil {
		t.Fatal("navigate while stopped accepted")
	}
	if err := b.HandleInput(r.dev, device.InputEvent{Kind: device.InputScroll}); err == nil {
		t.Fatal("scroll while stopped accepted")
	}
}

func TestClearDataForcesSetup(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Chrome", nil)
	r.dev.LaunchApp(b.PackageName())
	r.clk.Advance(10 * time.Second)
	r.dev.StopApp(b.PackageName())
	r.dev.ClearAppData(b.PackageName())
	// Relaunch pays setup: CPU right after launch is elevated.
	r.dev.LaunchApp(b.PackageName())
	r.clk.Advance(time.Second)
	setupUtil := r.dev.CPU().UtilAt(r.clk.Now())
	if setupUtil < 20 {
		t.Fatalf("setup CPU = %.1f, want elevated", setupUtil)
	}
}

func TestStopCleansPipeline(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Firefox", nil)
	r.dev.LaunchApp(b.PackageName())
	r.clk.Advance(5 * time.Second)
	r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "x.com"})
	r.clk.Advance(2 * time.Second)
	r.dev.StopApp(b.PackageName())
	if r.dev.CPU().FindProcess(b.PackageName()) != nil {
		t.Fatal("browser process survived stop")
	}
	if r.dev.Framebuffer().UpdateRate() != 0 {
		t.Fatal("framebuffer active after stop")
	}
	// The pending load-settle timer must not resurrect state.
	r.clk.Advance(10 * time.Second)
}

func TestAdRefreshTraffic(t *testing.T) {
	r := newRig(t)
	b := installBrowser(t, r, "Chrome", nil)
	r.dev.LaunchApp(b.PackageName())
	r.clk.Advance(5 * time.Second)
	r.dev.Input(device.InputEvent{Kind: device.InputText, Text: "x.com"})
	r.clk.Advance(10 * time.Second)
	_, rxAfterLoad := r.dev.WiFi().Counters()
	r.clk.Advance(30 * time.Second) // page open: ads keep refreshing
	_, rxLater := r.dev.WiFi().Counters()
	if rxLater <= rxAfterLoad {
		t.Fatal("no ad refresh traffic while page open")
	}
	// Brave: no refresh traffic.
	r2 := newRig(t)
	b2 := installBrowser(t, r2, "Brave", nil)
	r2.dev.LaunchApp(b2.PackageName())
	r2.clk.Advance(5 * time.Second)
	r2.dev.Input(device.InputEvent{Kind: device.InputText, Text: "x.com"})
	r2.clk.Advance(10 * time.Second)
	_, a := r2.dev.WiFi().Counters()
	r2.clk.Advance(30 * time.Second)
	_, bb := r2.dev.WiFi().Counters()
	if bb != a {
		t.Fatalf("Brave generated ad refresh traffic: %d -> %d", a, bb)
	}
}
