package monsoon

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"batterylab/internal/power"
	"batterylab/internal/simclock"
)

// Property: for any constant source within the envelope, the sampled
// mean converges to the source value (unbiased ADC) and the energy
// integral matches the analytic value.

func TestPropertySamplingUnbiased(t *testing.T) {
	f := func(raw float64, seed uint64) bool {
		level := math.Mod(math.Abs(raw), 5000)
		if math.IsNaN(level) {
			return true
		}
		// Near zero the unbiasedness property does not hold: the ADC
		// clamps negative readings to 0, rectifying the noise and biasing
		// the mean up by ~sigma/sqrt(2*pi). Skip levels within 5 sigma of
		// the floor.
		if level < 6 {
			return true
		}
		clk := simclock.NewVirtual()
		m := New(clk, "HV", seed)
		m.SetMains(true)
		if err := m.SetVout(3.85); err != nil {
			return false
		}
		m.WireSource(power.SourceFunc(func(time.Time) float64 { return level }))
		if err := m.StartSampling(1000); err != nil {
			return false
		}
		clk.Advance(time.Second)
		s, err := m.StopSampling()
		if err != nil {
			return false
		}
		// Unbiased within 5 sigma of the ADC noise's standard error.
		se := 1.2 / math.Sqrt(float64(s.Len()))
		return math.Abs(s.Summary().Mean-level) < 5*se+0.06 // +quantization
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyMatchesAnalytic(t *testing.T) {
	f := func(raw float64) bool {
		level := math.Mod(math.Abs(raw), 3000)
		if math.IsNaN(level) {
			return true
		}
		// As above: the ADC's zero floor rectifies the noise near 0,
		// biasing the integral beyond the relative tolerance.
		if level < 6 {
			return true
		}
		clk := simclock.NewVirtual()
		m := New(clk, "HV", 1)
		m.SetMains(true)
		m.SetVout(3.85)
		m.WireSource(power.SourceFunc(func(time.Time) float64 { return level }))
		m.StartSampling(500)
		dur := 30 * time.Second
		clk.Advance(dur)
		s, _ := m.StopSampling()
		want := level * dur.Hours() // mAh
		got := s.EnergyMAH()
		return math.Abs(got-want) <= 0.01*want+0.001
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
