package monsoon

import (
	"math"
	"testing"
	"time"

	"batterylab/internal/power"
	"batterylab/internal/simclock"
)

func newMon(t *testing.T) (*Monsoon, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual()
	m := New(clk, "HV0001", 7)
	return m, clk
}

func constSource(ma float64) power.Source {
	return power.SourceFunc(func(time.Time) float64 { return ma })
}

func TestLiveSummaryMidRun(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(160))
	if _, err := m.LiveSummary(); err != ErrNotSampling {
		t.Fatalf("LiveSummary before start = %v", err)
	}
	m.StartSampling(1000)
	clk.Advance(500 * time.Millisecond)
	mid, err := m.LiveSummary()
	if err != nil {
		t.Fatal(err)
	}
	if mid.N != 500 {
		t.Fatalf("mid-run N = %d, want 500", mid.N)
	}
	if math.Abs(mid.Mean-160) > 1 || mid.P95 < mid.P50 {
		t.Fatalf("mid-run summary implausible: %+v", mid)
	}
	// Sampling continues past the read; the final trace agrees with the
	// last live snapshot.
	clk.Advance(500 * time.Millisecond)
	end, err := m.LiveSummary()
	if err != nil {
		t.Fatal(err)
	}
	if end.N != 1000 || end.IntegralSeconds <= mid.IntegralSeconds {
		t.Fatalf("live summary stalled: %+v", end)
	}
	s, err := m.StopSampling()
	if err != nil {
		t.Fatal(err)
	}
	if s.Live() != end {
		t.Fatal("final trace disagrees with last live snapshot")
	}
	if _, err := m.LiveSummary(); err != ErrNotSampling {
		t.Fatalf("LiveSummary after stop = %v", err)
	}
}

func TestRequiresMains(t *testing.T) {
	m, _ := newMon(t)
	if err := m.SetVout(3.85); err != ErrUnpowered {
		t.Fatalf("SetVout unpowered = %v", err)
	}
	if err := m.StartSampling(5000); err != ErrUnpowered {
		t.Fatalf("StartSampling unpowered = %v", err)
	}
}

func TestVoutEnvelope(t *testing.T) {
	m, _ := newMon(t)
	m.SetMains(true)
	if err := m.SetVout(0.5); err == nil {
		t.Fatal("0.5 V accepted")
	}
	if err := m.SetVout(14); err == nil {
		t.Fatal("14 V accepted")
	}
	if err := m.SetVout(3.85); err != nil {
		t.Fatal(err)
	}
	if m.Vout() != 3.85 {
		t.Fatalf("Vout = %v", m.Vout())
	}
	if err := m.SetVout(0); err != nil {
		t.Fatal("disabling Vout rejected")
	}
}

func TestStartSamplingPreconditions(t *testing.T) {
	m, _ := newMon(t)
	m.SetMains(true)
	if err := m.StartSampling(5000); err != ErrVoutOff {
		t.Fatalf("want ErrVoutOff, got %v", err)
	}
	m.SetVout(3.85)
	if err := m.StartSampling(5000); err != ErrNoSource {
		t.Fatalf("want ErrNoSource, got %v", err)
	}
	m.WireSource(constSource(100))
	if err := m.StartSampling(5000); err != nil {
		t.Fatal(err)
	}
	if err := m.StartSampling(5000); err != ErrBusy {
		t.Fatalf("want ErrBusy, got %v", err)
	}
}

func TestSamplingRateAndCount(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(150))
	if err := m.StartSampling(1000); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	s, err := m.StopSampling()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2000 {
		t.Fatalf("samples = %d, want 2000", s.Len())
	}
	if m.Sampling() {
		t.Fatal("still sampling after stop")
	}
}

func TestSamplingAccuracy(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(160))
	m.StartSampling(5000)
	clk.Advance(time.Second)
	s, _ := m.StopSampling()
	sum := s.Summary()
	if math.Abs(sum.Mean-160) > 0.5 {
		t.Fatalf("mean = %v, want ~160", sum.Mean)
	}
	if sum.Std == 0 {
		t.Fatal("ADC noise absent")
	}
	if sum.Std > 3 {
		t.Fatalf("ADC noise too large: std = %v", sum.Std)
	}
}

func TestRateClamp(t *testing.T) {
	m, _ := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(1))
	m.StartSampling(50000)
	if m.SampleRate() != MaxSampleRate {
		t.Fatalf("rate = %d, want %d", m.SampleRate(), MaxSampleRate)
	}
	m.StopSampling()
	m.StartSampling(0)
	if m.SampleRate() != MaxSampleRate {
		t.Fatalf("rate = %d, want clamped default", m.SampleRate())
	}
}

func TestOvercurrentClamp(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(13.5)
	m.WireSource(constSource(9000))
	m.StartSampling(100)
	clk.Advance(time.Second)
	s, _ := m.StopSampling()
	if s.Summary().Max > MaxCurrentMA {
		t.Fatalf("max sample %v exceeds envelope", s.Summary().Max)
	}
	if m.OvercurrentEvents() == 0 {
		t.Fatal("overcurrent not counted")
	}
}

func TestMainsCutAbortsSampling(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(100))
	m.StartSampling(100)
	clk.Advance(100 * time.Millisecond)
	m.SetMains(false)
	if m.Sampling() {
		t.Fatal("sampling survived mains cut")
	}
	if m.Vout() != 0 {
		t.Fatal("Vout survived mains cut")
	}
	if _, err := m.StopSampling(); err != ErrNotSampling {
		t.Fatalf("StopSampling after cut = %v", err)
	}
	// No stray samples after the cut.
	n := 0
	clk.Advance(time.Second)
	_ = n
}

func TestStopWithoutStart(t *testing.T) {
	m, _ := newMon(t)
	if _, err := m.StopSampling(); err != ErrNotSampling {
		t.Fatalf("got %v", err)
	}
}

func TestNoNegativeSamples(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(0.8)
	m.WireSource(constSource(0)) // relay open: reads ~0 plus noise
	m.StartSampling(1000)
	clk.Advance(time.Second)
	s, _ := m.StopSampling()
	if s.Summary().Min < 0 {
		t.Fatalf("negative sample: %v", s.Summary().Min)
	}
}

func TestSeriesTimestampsMonotonic(t *testing.T) {
	m, clk := newMon(t)
	m.SetMains(true)
	m.SetVout(3.85)
	m.WireSource(constSource(10))
	m.StartSampling(500)
	clk.Advance(time.Second)
	s, _ := m.StopSampling()
	for i := 1; i < s.Len(); i++ {
		if s.At(i).T.Before(s.At(i - 1).T) {
			t.Fatal("timestamps not monotonic")
		}
	}
	if s.MeanDt() != 2*time.Millisecond {
		t.Fatalf("meanDt = %v, want 2ms", s.MeanDt())
	}
}
