// Package monsoon models the Monsoon High Voltage Power Monitor, the
// metering hardware in every BatteryLab vantage point: 0.8–13.5 V output,
// up to 6 A continuous current, sampled at 5 kHz (§3.2). The API mirrors
// the Monsoon Python library the paper drives from the controller:
// set the output voltage, start sampling, stop and collect the trace.
//
// The monitor draws its mains power through the vantage point's WiFi
// power socket; BatteryLab keeps it off when no experiment needs it "for
// safety reasons" (§3.1), which the model enforces: an unpowered monitor
// refuses every command.
package monsoon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"batterylab/internal/power"
	"batterylab/internal/rng"
	"batterylab/internal/samples"
	"batterylab/internal/simclock"
	"batterylab/internal/trace"
)

// Hardware envelope of the Monsoon HV.
const (
	MinVoutV      = 0.8
	MaxVoutV      = 13.5
	MaxCurrentMA  = 6000
	MaxSampleRate = 5000 // Hz
)

// Errors returned by the monitor.
var (
	ErrUnpowered   = errors.New("monsoon: no mains power")
	ErrVoutOff     = errors.New("monsoon: Vout disabled")
	ErrNoSource    = errors.New("monsoon: no measurement input wired")
	ErrBusy        = errors.New("monsoon: sampling already in progress")
	ErrNotSampling = errors.New("monsoon: not sampling")
)

// Monsoon is one power monitor. It is safe for concurrent use.
type Monsoon struct {
	clock simclock.Clock
	noise *rng.RNG

	mu          sync.Mutex
	mains       bool
	voutV       float64
	source      power.Source
	run         *samplingRun
	overcurrent int
	serial      string
}

type samplingRun struct {
	series *trace.Series
	ticker *simclock.Ticker
	rate   int
}

// New returns a monitor with mains off and Vout disabled.
func New(clock simclock.Clock, serial string, seed uint64) *Monsoon {
	return &Monsoon{
		clock:  clock,
		noise:  rng.New(seed).Fork("monsoon/" + serial),
		serial: serial,
	}
}

// Serial reports the unit's serial number.
func (m *Monsoon) Serial() string { return m.serial }

// SetMains is driven by the WiFi power socket. Cutting mains mid-run
// aborts the sampling session and disables Vout — the hard failure mode
// the access server's safety job protects against.
func (m *Monsoon) SetMains(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mains = on
	if !on {
		m.voutV = 0
		m.stopLocked()
	}
}

// Powered reports whether the unit has mains power.
func (m *Monsoon) Powered() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mains
}

// WireSource connects the measurement input: what flows through the Vout
// terminals. In a vantage point this is the relay switch's MeasuredSource
// for the selected channel.
func (m *Monsoon) WireSource(src power.Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.source = src
}

// SetVout programs the output voltage. Zero disables the output. Values
// outside the HV envelope are rejected.
func (m *Monsoon) SetVout(v float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.mains {
		return ErrUnpowered
	}
	if v == 0 {
		m.voutV = 0
		return nil
	}
	if v < MinVoutV || v > MaxVoutV {
		return fmt.Errorf("monsoon: Vout %.2f V outside [%.1f, %.1f]", v, MinVoutV, MaxVoutV)
	}
	m.voutV = v
	return nil
}

// Vout reports the programmed output voltage.
func (m *Monsoon) Vout() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.voutV
}

// StartSampling begins recording current samples at rate Hz into a fresh
// trace. Rates above the hardware maximum are clamped. The monitor must
// be powered, with Vout enabled and a source wired.
func (m *Monsoon) StartSampling(rate int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.mains {
		return ErrUnpowered
	}
	if m.voutV == 0 {
		return ErrVoutOff
	}
	if m.source == nil {
		return ErrNoSource
	}
	if m.run != nil {
		return ErrBusy
	}
	if rate <= 0 || rate > MaxSampleRate {
		rate = MaxSampleRate
	}
	run := &samplingRun{
		series: trace.NewSeries("current", "mA"),
		rate:   rate,
	}
	period := time.Duration(float64(time.Second) / float64(rate))
	run.ticker = simclock.NewTicker(m.clock, period, func(now time.Time) {
		m.sample(run, now)
	})
	m.run = run
	return nil
}

// sample records one ADC reading: the wired source's draw plus ADC noise,
// clamped to the 6 A envelope (counting overcurrent events).
func (m *Monsoon) sample(run *samplingRun, now time.Time) {
	m.mu.Lock()
	if m.run != run { // stopped since scheduling
		m.mu.Unlock()
		return
	}
	src := m.source
	m.mu.Unlock()

	i := src.CurrentMA(now)
	// ADC noise: ±1.2 mA gaussian, then 0.1 mA quantization.
	i += m.noise.At("adc", now.UnixNano()).Normal(0, 1.2)
	if i < 0 {
		i = 0
	}
	over := false
	if i > MaxCurrentMA {
		i = MaxCurrentMA
		over = true
	}
	i = float64(int64(i*10+0.5)) / 10

	m.mu.Lock()
	if m.run == run {
		run.series.MustAppend(now, i)
		if over {
			m.overcurrent++
		}
	}
	m.mu.Unlock()
}

// StopSampling ends the run and returns the recorded trace.
func (m *Monsoon) StopSampling() (*trace.Series, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.run == nil {
		return nil, ErrNotSampling
	}
	s := m.run.series
	m.stopLocked()
	return s, nil
}

func (m *Monsoon) stopLocked() {
	if m.run != nil {
		m.run.ticker.Stop()
		m.run = nil
	}
}

// LiveSummary reports the streaming summary of the in-flight sampling
// run — running mean/std/min/max, P50/P95 estimates and charge integral
// over every sample captured so far. O(1): the trace aggregates online
// while the ADC ticks, so progress UIs and session observers read
// mid-run statistics without touching the sample columns.
func (m *Monsoon) LiveSummary() (samples.LiveSummary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.run == nil {
		return samples.LiveSummary{}, ErrNotSampling
	}
	return m.run.series.Live(), nil
}

// Sampling reports whether a run is in progress.
func (m *Monsoon) Sampling() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.run != nil
}

// SampleRate reports the active run's rate, or 0.
func (m *Monsoon) SampleRate() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.run == nil {
		return 0
	}
	return m.run.rate
}

// OvercurrentEvents reports how many samples hit the 6 A clamp.
func (m *Monsoon) OvercurrentEvents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overcurrent
}
