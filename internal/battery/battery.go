// Package battery models a removable lithium-ion phone battery: nominal
// capacity, an open-circuit-voltage curve over state of charge, and charge
// accounting. BatteryLab's relay circuit ("battery bypass") disconnects
// this battery and substitutes the Monsoon's Vout so that all current is
// drawn — and measured — through the monitor; the model keeps the same
// semantics so tests can assert that measurement requires the bypass.
package battery

import (
	"fmt"
	"sync"
)

// Battery is a chemical cell with charge state. It is safe for concurrent
// use.
type Battery struct {
	mu          sync.Mutex
	capacityMAH float64
	chargeMAH   float64
	nominalV    float64
	attached    bool // physically seated in the phone
}

// Config describes a battery.
type Config struct {
	// CapacityMAH is the design capacity, e.g. 3000 for a Samsung J7 Duo.
	CapacityMAH float64
	// NominalVoltage is the pack's nominal voltage, e.g. 3.85.
	NominalVoltage float64
}

// New returns a fully charged, attached battery.
func New(cfg Config) (*Battery, error) {
	if cfg.CapacityMAH <= 0 {
		return nil, fmt.Errorf("battery: non-positive capacity %v", cfg.CapacityMAH)
	}
	if cfg.NominalVoltage <= 0 {
		return nil, fmt.Errorf("battery: non-positive voltage %v", cfg.NominalVoltage)
	}
	return &Battery{
		capacityMAH: cfg.CapacityMAH,
		chargeMAH:   cfg.CapacityMAH,
		nominalV:    cfg.NominalVoltage,
		attached:    true,
	}, nil
}

// CapacityMAH reports the design capacity.
func (b *Battery) CapacityMAH() float64 { return b.capacityMAH }

// NominalVoltage reports the pack's nominal voltage.
func (b *Battery) NominalVoltage() float64 { return b.nominalV }

// SoC reports state of charge in [0, 1].
func (b *Battery) SoC() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.chargeMAH / b.capacityMAH
}

// ChargeMAH reports the remaining charge.
func (b *Battery) ChargeMAH() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.chargeMAH
}

// Drain removes mah of charge (clamped at empty) and reports the charge
// actually removed. Draining a detached battery is a wiring bug.
func (b *Battery) Drain(mah float64) (float64, error) {
	if mah < 0 {
		return 0, fmt.Errorf("battery: negative drain %v", mah)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.attached {
		return 0, fmt.Errorf("battery: drain while detached")
	}
	drained := mah
	if drained > b.chargeMAH {
		drained = b.chargeMAH
	}
	b.chargeMAH -= drained
	return drained, nil
}

// Charge adds mah of charge, clamped at capacity, and reports the charge
// actually stored.
func (b *Battery) Charge(mah float64) (float64, error) {
	if mah < 0 {
		return 0, fmt.Errorf("battery: negative charge %v", mah)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	stored := mah
	if b.chargeMAH+stored > b.capacityMAH {
		stored = b.capacityMAH - b.chargeMAH
	}
	b.chargeMAH += stored
	return stored, nil
}

// Detach removes the battery from the phone (the relay's bypass position,
// or a human lifting the pack). Detaching twice is an error so tests catch
// double-switching.
func (b *Battery) Detach() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.attached {
		return fmt.Errorf("battery: already detached")
	}
	b.attached = false
	return nil
}

// Attach reseats the battery.
func (b *Battery) Attach() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.attached {
		return fmt.Errorf("battery: already attached")
	}
	b.attached = true
	return nil
}

// Attached reports whether the battery is seated.
func (b *Battery) Attached() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attached
}

// VoltageV reports the open-circuit voltage at the current state of
// charge using a piecewise-linear Li-ion discharge curve anchored at the
// nominal voltage.
func (b *Battery) VoltageV() float64 {
	soc := b.SoC()
	// Normalized Li-ion OCV curve: 4.35 V full, flat plateau around
	// nominal, knee below 10 %.
	type knot struct{ soc, v float64 }
	curve := []knot{
		{0.00, 3.00},
		{0.05, 3.40},
		{0.10, 3.60},
		{0.30, 3.72},
		{0.50, 3.80},
		{0.70, 3.90},
		{0.90, 4.10},
		{1.00, 4.35},
	}
	scale := b.nominalV / 3.85
	for i := 1; i < len(curve); i++ {
		if soc <= curve[i].soc {
			lo, hi := curve[i-1], curve[i]
			frac := (soc - lo.soc) / (hi.soc - lo.soc)
			return (lo.v + frac*(hi.v-lo.v)) * scale
		}
	}
	return curve[len(curve)-1].v * scale
}
