package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func newTest(t *testing.T) *Battery {
	t.Helper()
	b, err := New(Config{CapacityMAH: 3000, NominalVoltage: 3.85})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{CapacityMAH: 0, NominalVoltage: 3.85}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(Config{CapacityMAH: 3000, NominalVoltage: -1}); err == nil {
		t.Fatal("negative voltage accepted")
	}
}

func TestStartsFull(t *testing.T) {
	b := newTest(t)
	if b.SoC() != 1 {
		t.Fatalf("SoC = %v, want 1", b.SoC())
	}
	if b.ChargeMAH() != 3000 {
		t.Fatalf("charge = %v", b.ChargeMAH())
	}
}

func TestDrain(t *testing.T) {
	b := newTest(t)
	got, err := b.Drain(500)
	if err != nil || got != 500 {
		t.Fatalf("Drain = %v, %v", got, err)
	}
	if b.ChargeMAH() != 2500 {
		t.Fatalf("charge = %v", b.ChargeMAH())
	}
}

func TestDrainClampsAtEmpty(t *testing.T) {
	b := newTest(t)
	got, err := b.Drain(5000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3000 {
		t.Fatalf("drained %v, want 3000", got)
	}
	if b.SoC() != 0 {
		t.Fatalf("SoC = %v", b.SoC())
	}
}

func TestDrainNegative(t *testing.T) {
	b := newTest(t)
	if _, err := b.Drain(-1); err == nil {
		t.Fatal("negative drain accepted")
	}
}

func TestChargeClampsAtFull(t *testing.T) {
	b := newTest(t)
	b.Drain(100)
	stored, err := b.Charge(500)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 100 {
		t.Fatalf("stored %v, want 100", stored)
	}
	if b.SoC() != 1 {
		t.Fatalf("SoC = %v", b.SoC())
	}
}

func TestDetachAttachCycle(t *testing.T) {
	b := newTest(t)
	if !b.Attached() {
		t.Fatal("starts detached")
	}
	if err := b.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := b.Detach(); err == nil {
		t.Fatal("double detach accepted")
	}
	if _, err := b.Drain(10); err == nil {
		t.Fatal("drain while detached accepted")
	}
	if err := b.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestVoltageCurveMonotonic(t *testing.T) {
	b := newTest(t)
	prev := math.Inf(1)
	for soc := 1.0; soc >= 0; soc -= 0.01 {
		b.chargeMAH = soc * b.capacityMAH
		v := b.VoltageV()
		if v > prev+1e-9 {
			t.Fatalf("voltage not monotonic at SoC %.2f: %v > %v", soc, v, prev)
		}
		prev = v
	}
}

func TestVoltageEndpoints(t *testing.T) {
	b := newTest(t)
	if v := b.VoltageV(); math.Abs(v-4.35) > 0.01 {
		t.Fatalf("full voltage = %v, want ~4.35", v)
	}
	b.chargeMAH = 0
	if v := b.VoltageV(); math.Abs(v-3.0) > 0.01 {
		t.Fatalf("empty voltage = %v, want ~3.0", v)
	}
}

func TestVoltageNearNominalMidCurve(t *testing.T) {
	b := newTest(t)
	b.chargeMAH = 0.5 * b.capacityMAH
	if v := b.VoltageV(); math.Abs(v-3.80) > 0.05 {
		t.Fatalf("mid voltage = %v, want ~3.8", v)
	}
}

func TestChargeConservationProperty(t *testing.T) {
	if err := quick.Check(func(drains []float64) bool {
		b, _ := New(Config{CapacityMAH: 3000, NominalVoltage: 3.85})
		var total float64
		for _, d := range drains {
			d = math.Abs(math.Mod(d, 100))
			got, err := b.Drain(d)
			if err != nil {
				return false
			}
			total += got
		}
		return math.Abs((3000-total)-b.ChargeMAH()) < 1e-6 && b.ChargeMAH() >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}
