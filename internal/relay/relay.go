// Package relay models BatteryLab's relay-based circuit switch (§3.2).
// The switch sits between the test devices and the power monitor: each
// relay channel takes a device's voltage (+) terminal as input and
// programmatically selects between the device battery's voltage terminal
// (normal operation) and the power monitor's Vout connector (the "battery
// bypass" used during a measurement). Ground is permanently common.
//
// The switch has two jobs: enabling the bypass without manual re-wiring,
// and letting one vantage point host several test devices concurrently.
// It is driven from the controller's GPIO header: one pin per channel,
// Low = battery, High = monitor bypass.
package relay

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/gpio"
	"batterylab/internal/power"
	"batterylab/internal/simclock"
)

// Position is a relay channel's selected path.
type Position int

// Channel positions.
const (
	// PosBattery connects the device to its own battery.
	PosBattery Position = iota
	// PosMonitor connects the device to the power monitor's Vout
	// (battery bypass).
	PosMonitor
)

func (p Position) String() string {
	if p == PosMonitor {
		return "monitor"
	}
	return "battery"
}

// SettleTime is how long contacts take to settle after actuation; the
// controller must not trust measurements taken inside this window.
const SettleTime = 10 * time.Millisecond

// ContactGain models the small series loss introduced by the relay
// contacts and extra cabling relative to the Monsoon-recommended direct
// wiring. The accuracy evaluation (Fig. 2) shows this is negligible.
const ContactGain = 1.004

// Switch is a multi-channel relay board.
type Switch struct {
	clock   simclock.Clock
	bank    *gpio.Bank
	pinBase int

	mu       sync.Mutex
	channels []channel
}

type channel struct {
	pos       Position
	settledAt time.Time
	onSwitch  []func(Position)
}

// NewSwitch wires an n-channel relay board to GPIO pins
// [pinBase, pinBase+n) of bank, configuring them as outputs. All channels
// start at PosBattery.
func NewSwitch(clock simclock.Clock, bank *gpio.Bank, pinBase, n int) (*Switch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("relay: need at least one channel, got %d", n)
	}
	s := &Switch{clock: clock, bank: bank, pinBase: pinBase, channels: make([]channel, n)}
	for i := 0; i < n; i++ {
		if err := bank.Configure(pinBase+i, gpio.Output); err != nil {
			return nil, fmt.Errorf("relay: configuring pin %d: %w", pinBase+i, err)
		}
		ch := i
		if err := bank.Watch(pinBase+i, func(level gpio.Level) {
			s.actuate(ch, level)
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Channels reports the channel count.
func (s *Switch) Channels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.channels)
}

func (s *Switch) checkLocked(ch int) error {
	if ch < 0 || ch >= len(s.channels) {
		return fmt.Errorf("relay: channel %d out of range [0,%d)", ch, len(s.channels))
	}
	return nil
}

// actuate reacts to the GPIO edge driving channel ch.
func (s *Switch) actuate(ch int, level gpio.Level) {
	pos := PosBattery
	if level == gpio.High {
		pos = PosMonitor
	}
	s.mu.Lock()
	if s.channels[ch].pos == pos {
		s.mu.Unlock()
		return
	}
	s.channels[ch].pos = pos
	s.channels[ch].settledAt = s.clock.Now().Add(SettleTime)
	callbacks := append([]func(Position){}, s.channels[ch].onSwitch...)
	s.mu.Unlock()
	for _, f := range callbacks {
		f(pos)
	}
}

// Set drives channel ch to pos through the GPIO pin — exactly what the
// controller's batt_switch API does.
func (s *Switch) Set(ch int, pos Position) error {
	s.mu.Lock()
	if err := s.checkLocked(ch); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	level := gpio.Low
	if pos == PosMonitor {
		level = gpio.High
	}
	return s.bank.Write(s.pinBase+ch, level)
}

// Get reports channel ch's position.
func (s *Switch) Get(ch int) (Position, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(ch); err != nil {
		return PosBattery, err
	}
	return s.channels[ch].pos, nil
}

// Settled reports whether channel ch's contacts have settled.
func (s *Switch) Settled(ch int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(ch); err != nil {
		return false, err
	}
	return !s.clock.Now().Before(s.channels[ch].settledAt), nil
}

// OnSwitch registers a callback invoked whenever channel ch changes
// position. The device model uses this to swap its supply path.
func (s *Switch) OnSwitch(ch int, f func(Position)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(ch); err != nil {
		return err
	}
	s.channels[ch].onSwitch = append(s.channels[ch].onSwitch, f)
	return nil
}

// MeasuredSource returns the current the power monitor observes on its
// Vout for channel ch given the device rail: zero unless the channel is
// in the bypass position, and scaled by the contact loss when it is. The
// monitor reads garbage (zero-clamped) during the settle window.
func (s *Switch) MeasuredSource(ch int, rail power.Source) power.Source {
	return power.SourceFunc(func(now time.Time) float64 {
		s.mu.Lock()
		if ch < 0 || ch >= len(s.channels) {
			s.mu.Unlock()
			return 0
		}
		c := s.channels[ch]
		s.mu.Unlock()
		if c.pos != PosMonitor || now.Before(c.settledAt) {
			return 0
		}
		return ContactGain * rail.CurrentMA(now)
	})
}
