package relay

import (
	"testing"
	"time"

	"batterylab/internal/gpio"
	"batterylab/internal/power"
	"batterylab/internal/simclock"
)

func newSwitch(t *testing.T, n int) (*Switch, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual()
	bank := gpio.NewBank(26)
	s, err := NewSwitch(clk, bank, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	return s, clk
}

func TestDefaultsToBattery(t *testing.T) {
	s, _ := newSwitch(t, 3)
	for ch := 0; ch < 3; ch++ {
		pos, err := s.Get(ch)
		if err != nil || pos != PosBattery {
			t.Fatalf("channel %d = %v, %v", ch, pos, err)
		}
	}
}

func TestSetSwitchesPosition(t *testing.T) {
	s, _ := newSwitch(t, 2)
	if err := s.Set(1, PosMonitor); err != nil {
		t.Fatal(err)
	}
	pos, _ := s.Get(1)
	if pos != PosMonitor {
		t.Fatalf("pos = %v", pos)
	}
	// Channel 0 untouched.
	pos, _ = s.Get(0)
	if pos != PosBattery {
		t.Fatal("unrelated channel switched")
	}
}

func TestOnSwitchCallback(t *testing.T) {
	s, _ := newSwitch(t, 1)
	var events []Position
	s.OnSwitch(0, func(p Position) { events = append(events, p) })
	s.Set(0, PosMonitor)
	s.Set(0, PosMonitor) // no change
	s.Set(0, PosBattery)
	if len(events) != 2 || events[0] != PosMonitor || events[1] != PosBattery {
		t.Fatalf("events = %v", events)
	}
}

func TestSettleWindow(t *testing.T) {
	s, clk := newSwitch(t, 1)
	s.Set(0, PosMonitor)
	settled, err := s.Settled(0)
	if err != nil {
		t.Fatal(err)
	}
	if settled {
		t.Fatal("settled immediately after actuation")
	}
	clk.Advance(SettleTime)
	settled, _ = s.Settled(0)
	if !settled {
		t.Fatal("not settled after SettleTime")
	}
}

func TestMeasuredSourceGating(t *testing.T) {
	s, clk := newSwitch(t, 1)
	rail := power.SourceFunc(func(time.Time) float64 { return 100 })
	src := s.MeasuredSource(0, rail)

	if got := src.CurrentMA(clk.Now()); got != 0 {
		t.Fatalf("battery position reads %v, want 0", got)
	}
	s.Set(0, PosMonitor)
	if got := src.CurrentMA(clk.Now()); got != 0 {
		t.Fatalf("unsettled reads %v, want 0", got)
	}
	clk.Advance(SettleTime)
	want := ContactGain * 100
	if got := src.CurrentMA(clk.Now()); got != want {
		t.Fatalf("bypass reads %v, want %v", got, want)
	}
	s.Set(0, PosBattery)
	clk.Advance(SettleTime)
	if got := src.CurrentMA(clk.Now()); got != 0 {
		t.Fatalf("back-to-battery reads %v, want 0", got)
	}
}

func TestContactGainSmall(t *testing.T) {
	if ContactGain < 1.0 || ContactGain > 1.01 {
		t.Fatalf("ContactGain %v should be a small positive loss", ContactGain)
	}
}

func TestRangeErrors(t *testing.T) {
	s, _ := newSwitch(t, 1)
	if err := s.Set(5, PosMonitor); err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if _, err := s.Get(-1); err == nil {
		t.Fatal("negative Get accepted")
	}
	if err := s.OnSwitch(3, func(Position) {}); err == nil {
		t.Fatal("out-of-range OnSwitch accepted")
	}
	if _, err := s.Settled(9); err == nil {
		t.Fatal("out-of-range Settled accepted")
	}
}

func TestZeroChannels(t *testing.T) {
	clk := simclock.NewVirtual()
	if _, err := NewSwitch(clk, gpio.NewBank(4), 0, 0); err == nil {
		t.Fatal("zero-channel switch accepted")
	}
}

func TestPositionString(t *testing.T) {
	if PosBattery.String() != "battery" || PosMonitor.String() != "monitor" {
		t.Fatal("Position strings")
	}
}
