package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/video"
)

// This file turns declarative wire specs (internal/api) into runnable
// core.ExperimentSpec values. The bridge is the workload registry: a
// remote client cannot ship a Go closure, so it names a workload the
// server has vetted and parameterizes it. The platform implements
// accessserver.SpecBackend on top, which is how POST /api/v1/experiments
// reaches the experiment runner.

// WorkloadBuilder constructs a workload's automation-script factory
// from its wire parameters. Parameter errors should be returned (not
// deferred to run time) so submissions fail fast with a 400.
type WorkloadBuilder func(params api.Params) (func(automation.Driver) *automation.Script, error)

// WorkloadRegistry is the named-workload table the v1 API compiles
// against. It ships with the builtins ("browser", "video", "idle") and
// accepts deployment-specific additions via Register.
type WorkloadRegistry struct {
	mu sync.RWMutex
	m  map[string]WorkloadBuilder
}

// NewWorkloadRegistry returns a registry preloaded with the builtin
// workloads.
func NewWorkloadRegistry() *WorkloadRegistry {
	r := &WorkloadRegistry{m: make(map[string]WorkloadBuilder)}
	r.Register("browser", buildBrowserWorkload)
	r.Register("video", buildVideoWorkload)
	r.Register("idle", buildIdleWorkload)
	return r
}

// Register adds (or replaces) a named workload.
func (r *WorkloadRegistry) Register(name string, b WorkloadBuilder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = b
}

// Names lists the registered workloads, sorted.
func (r *WorkloadRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup resolves a builder.
func (r *WorkloadRegistry) lookup(name string) (WorkloadBuilder, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.m[name]
	return b, ok
}

// buildBrowserWorkload is the §4.2 page-visit workload. Params:
//
//	browser        study browser name (default "Brave")
//	pages          page count 1-10 from the news set, OR
//	page_list      explicit []string of pages (overrides pages)
//	scrolls        scrolls per page (default 8)
//	dwell_ms       per-page dwell (default 6000)
//	scroll_gap_ms  pause between scrolls (default 2000)
func buildBrowserWorkload(params api.Params) (func(automation.Driver) *automation.Script, error) {
	prof, err := browser.FindProfile(params.String("browser", "Brave"))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", accessserver.ErrInvalid, err)
	}
	pages := params.StringSlice("page_list")
	if pages == nil {
		n := params.Int("pages", 10)
		all := browser.NewsSites()
		if n < 1 || n > len(all) {
			return nil, fmt.Errorf("%w: pages must be 1-%d, got %d", accessserver.ErrInvalid, len(all), n)
		}
		pages = all[:n]
	}
	opts := browser.WorkloadOptions{
		Pages:     pages,
		Scrolls:   params.Int("scrolls", 0),
		DwellTime: params.DurationMS("dwell_ms", 0),
		ScrollGap: params.DurationMS("scroll_gap_ms", 0),
	}
	pkg := prof.Package
	return func(drv automation.Driver) *automation.Script {
		return browser.BuildWorkload(drv, pkg, opts)
	}, nil
}

// buildVideoWorkload is the §4.1 mp4 playback workload. Params:
//
//	duration_ms  playback window (default 5 min)
func buildVideoWorkload(params api.Params) (func(automation.Driver) *automation.Script, error) {
	dur := params.DurationMS("duration_ms", 5*time.Minute)
	if dur <= 0 {
		return nil, fmt.Errorf("%w: duration_ms must be positive", accessserver.ErrInvalid)
	}
	return func(drv automation.Driver) *automation.Script {
		s := automation.NewScript("video")
		s.Add("launch", dur, func() error {
			_, err := drv.LaunchApp(video.PackageName)
			return err
		})
		return s
	}, nil
}

// buildIdleWorkload measures the device at rest. Params:
//
//	duration_ms  idle window (default 60 s)
func buildIdleWorkload(params api.Params) (func(automation.Driver) *automation.Script, error) {
	dur := params.DurationMS("duration_ms", time.Minute)
	if dur <= 0 {
		return nil, fmt.Errorf("%w: duration_ms must be positive", accessserver.ErrInvalid)
	}
	return func(automation.Driver) *automation.Script {
		s := automation.NewScript("idle")
		s.Add("idle", dur, nil)
		return s
	}, nil
}

// Workloads returns the platform's workload registry, for
// deployment-specific additions.
func (p *Platform) Workloads() *WorkloadRegistry { return p.workloads }

// CompileExperiment turns a declarative wire spec into a runnable
// ExperimentSpec: wire validation, transport parsing, workload lookup
// and parameter binding, plus node/device existence checks so a bad
// submission fails at the API boundary instead of inside the build
// queue. Errors wrap the accessserver sentinels for HTTP mapping.
func (p *Platform) CompileExperiment(ws api.ExperimentSpec) (ExperimentSpec, error) {
	var zero ExperimentSpec
	if err := ws.Validate(); err != nil {
		return zero, fmt.Errorf("%w: %v", accessserver.ErrInvalid, err)
	}
	var transport Transport
	switch ws.Transport {
	case "", api.TransportWiFi:
		transport = TransportWiFi
	case api.TransportBluetooth:
		transport = TransportBluetooth
	case api.TransportUSB:
		return zero, fmt.Errorf("%w: %v", accessserver.ErrInvalid, ErrUSBTransport)
	}
	builder, ok := p.workloads.lookup(ws.Workload.Name)
	if !ok {
		return zero, fmt.Errorf("%w: no workload %q (have %v)",
			accessserver.ErrNotFound, ws.Workload.Name, p.workloads.Names())
	}
	workload, err := builder(ws.Workload.Params)
	if err != nil {
		return zero, fmt.Errorf("workload %q: %w", ws.Workload.Name, err)
	}
	ctl, err := p.Controller(ws.Node)
	if err != nil {
		return zero, fmt.Errorf("%w: no vantage point %q", accessserver.ErrNotFound, ws.Node)
	}
	if _, err := ctl.Device(ws.Device); err != nil {
		return zero, fmt.Errorf("%w: node %q has no device %q", accessserver.ErrNotFound, ws.Node, ws.Device)
	}
	return ExperimentSpec{
		Node:            ws.Node,
		Device:          ws.Device,
		SampleRate:      ws.Monitor.SampleRateHz,
		VoltageV:        ws.Monitor.VoltageV,
		Mirroring:       ws.Mirroring,
		VPNLocation:     ws.VPNLocation,
		Transport:       transport,
		Workload:        workload,
		CPUSamplePeriod: time.Duration(ws.Monitor.CPUSamplePeriodMS) * time.Millisecond,
		Padding:         time.Duration(ws.Monitor.PaddingMS) * time.Millisecond,
	}, nil
}

// StartExperimentSpec compiles a wire spec and starts it as a local
// session — the local half of the location-transparent client contract:
// the same declarative spec a remote client POSTs runs unchanged
// in-process.
func (p *Platform) StartExperimentSpec(ctx context.Context, ws api.ExperimentSpec, obs ...Observer) (*Session, error) {
	spec, err := p.CompileExperiment(ws)
	if err != nil {
		return nil, err
	}
	return p.StartExperiment(ctx, spec, obs...)
}

// StartCampaignSpec compiles a wire campaign and starts it locally.
func (p *Platform) StartCampaignSpec(ctx context.Context, cs api.CampaignSpec, obs ...Observer) (*CampaignSession, error) {
	if err := cs.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", accessserver.ErrInvalid, err)
	}
	c := Campaign{MaxConcurrent: cs.MaxConcurrent}
	for i, ws := range cs.Experiments {
		spec, err := p.CompileExperiment(ws)
		if err != nil {
			return nil, fmt.Errorf("experiments[%d]: %w", i, err)
		}
		c.Specs = append(c.Specs, spec)
	}
	return p.StartCampaign(ctx, c, obs...)
}

// specBackend implements accessserver.SpecBackend over the platform.
type specBackend struct{ p *Platform }

// Compile implements accessserver.SpecBackend.
func (b specBackend) Compile(ws api.ExperimentSpec) (accessserver.Constraints, accessserver.RunFunc, error) {
	spec, err := b.p.CompileExperiment(ws)
	if err != nil {
		return accessserver.Constraints{}, nil, err
	}
	cons := accessserver.Constraints{
		Node:          spec.Node,
		Device:        spec.Device,
		RequireLowCPU: ws.Constraints.RequireLowCPU,
		Fallback:      ws.Constraints.AllowFallback,
	}
	return cons, b.p.MeasurementJob(spec), nil
}

// WorkloadNames implements accessserver.SpecBackend.
func (b specBackend) WorkloadNames() []string { return b.p.workloads.Names() }
