package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/samples"
	"batterylab/internal/simclock"
	"batterylab/internal/trace"
)

// Phase is where a running experiment currently is. Phases advance
// monotonically through the setup pipeline of §3 and the run itself.
type Phase int

// Experiment phases, in execution order.
const (
	// PhasePending: the session exists but setup has not reached a
	// reportable milestone yet.
	PhasePending Phase = iota
	// PhaseVPNUp: the §4.3 tunnel is connected (skipped when the spec
	// has no VPNLocation).
	PhaseVPNUp
	// PhaseTransportArmed: the measurement-safe ADB channel (WiFi or
	// Bluetooth) is up, so USB power can be cut.
	PhaseTransportArmed
	// PhaseMirrorOn: the device-mirroring pipeline is streaming
	// (skipped when the spec has Mirroring false).
	PhaseMirrorOn
	// PhaseMonitorArmed: the relay settled and the Monsoon is sampling.
	PhaseMonitorArmed
	// PhaseWorkload: the automation script is executing. Observers also
	// receive one PhaseWorkload event per script step, carrying the
	// step name.
	PhaseWorkload
	// PhaseSettle: the script finished; the monitor is held through the
	// padding tail.
	PhaseSettle
	// PhaseDone: teardown completed. The PhaseChange carries the run's
	// terminal error, if any.
	PhaseDone
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhasePending:
		return "pending"
	case PhaseVPNUp:
		return "vpn-up"
	case PhaseTransportArmed:
		return "transport-armed"
	case PhaseMirrorOn:
		return "mirror-on"
	case PhaseMonitorArmed:
		return "monitor-armed"
	case PhaseWorkload:
		return "workload"
	case PhaseSettle:
		return "settle"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseFromString inverts String for wire decoding (the remote client
// reconstructs PhaseChange events from their NDJSON form). Unknown
// strings report false.
func PhaseFromString(s string) (Phase, bool) {
	for p := PhasePending; p <= PhaseDone; p++ {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// PhaseChange is one phase-transition event delivered to observers.
// Node and Device identify the run, so one observer can watch a whole
// campaign's interleaved sessions and still attribute every event.
type PhaseChange struct {
	// Node and Device identify the run the event belongs to.
	Node   string
	Device string
	// Phase is the milestone reached.
	Phase Phase
	// At is the platform-clock instant of the transition.
	At time.Time
	// Step carries the workload step name on per-step PhaseWorkload
	// events ("" on the initial workload transition and other phases).
	Step string
	// Err is the run's terminal error on PhaseDone (nil on success).
	Err error
}

// Sample is one live progress reading delivered to observers while the
// monitor is armed: the device's true instantaneous draw, sampled at
// the spec's CPUSamplePeriod cadence. It is a live signal for progress
// UIs, not the monitor's trace — the Monsoon's ADC-noised, quantized
// samples at the full SampleRate arrive in Result.Current.
type Sample struct {
	// Node and Device identify the run the sample belongs to.
	Node      string
	Device    string
	At        time.Time
	CurrentMA float64
	// Live is the monitor-side streaming summary of the capture so far
	// (running mean, P50/P95, charge integral over every Monsoon sample
	// recorded up to At). Zero when the monitor is not sampling.
	Live samples.LiveSummary
}

// Observer receives a session's progress. OnPhase callbacks run on the
// clock's dispatch context (the driving goroutine under a Virtual
// clock, timer goroutines under the Real clock) and must not block or
// drive the clock. OnSample callbacks are decoupled from the capture
// path: they run on a per-session delivery goroutine, so a slow
// observer never stalls the Monsoon's sampling or the CPU monitors —
// under sustained backpressure live samples are dropped (counted by
// Session.DroppedSamples) rather than queued without bound. All
// accepted samples are delivered before the session's PhaseDone event
// and before Done closes — which also means an OnSample callback must
// not wait on the session's own completion (Wait or Done): teardown
// flushes the delivery queue before Done closes, so such a wait can
// never be satisfied. Cancel from a callback is fine.
type Observer interface {
	OnPhase(PhaseChange)
	OnSample(Sample)
}

// ObserverFuncs adapts plain functions to Observer; nil fields are
// skipped.
type ObserverFuncs struct {
	Phase  func(PhaseChange)
	Sample func(Sample)
}

// OnPhase implements Observer.
func (o ObserverFuncs) OnPhase(e PhaseChange) {
	if o.Phase != nil {
		o.Phase(e)
	}
}

// OnSample implements Observer.
func (o ObserverFuncs) OnSample(s Sample) {
	if o.Sample != nil {
		o.Sample(s)
	}
}

// obsMuxBuffer bounds the live-sample delivery queue. At the default
// 1 s CPUSamplePeriod this is over 17 minutes of backlog before a
// stuck observer costs a sample.
const obsMuxBuffer = 1024

// obsMux fans live samples out to observers on a dedicated goroutine,
// decoupling observer latency from the capture path. Phase events stay
// synchronous (they are rare and ordered); samples flow through a
// bounded queue with a drop-newest policy under backpressure.
type obsMux struct {
	obs []Observer
	ch  chan Sample
	// drained closes when the delivery goroutine has exited (queue
	// empty, channel closed).
	drained chan struct{}
	goid    uint64 // delivery goroutine id, for re-entrant stop()

	mu      sync.Mutex
	closed  bool
	dropped int64
}

func newObsMux(obs []Observer) *obsMux {
	m := &obsMux{
		obs:     obs,
		ch:      make(chan Sample, obsMuxBuffer),
		drained: make(chan struct{}),
	}
	ready := make(chan struct{})
	go func() {
		m.goid = goroutineID()
		close(ready)
		for s := range m.ch {
			for _, o := range m.obs {
				o.OnSample(s)
			}
		}
		close(m.drained)
	}()
	<-ready
	return m
}

// post enqueues a sample without ever blocking the caller (the capture
// path). A full queue drops the sample; a stopped mux ignores it (a
// ticker tick can still be in flight while teardown runs).
func (m *obsMux) post(s Sample) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	select {
	case m.ch <- s:
	default:
		m.dropped++
	}
}

// stop closes intake and waits until every queued sample has been
// delivered. Idempotent. When called from an observer callback itself
// (an OnSample handler cancelling its own session), it skips the wait
// instead of deadlocking; the handful of trailing samples then drain
// after Done.
func (m *obsMux) stop() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.ch)
	}
	m.mu.Unlock()
	if goroutineID() == m.goid {
		return
	}
	<-m.drained
}

func (m *obsMux) droppedCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// goroutineID parses the current goroutine's id from its stack header —
// only used to make obsMux.stop re-entrancy-safe.
func goroutineID() uint64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(b[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}

// Session is a handle to one in-flight experiment. It is created by
// Platform.StartExperiment and is safe for concurrent use.
type Session struct {
	platform  *Platform
	clock     simclock.Clock
	spec      ExperimentSpec
	ctl       *controller.Controller
	dev       *device.Device
	observers []Observer
	mux       *obsMux // nil without observers
	onDone    func(*Result, error)

	script   *automation.Script
	scripted time.Duration

	// done closes when teardown has completed and the outcome is set.
	done chan struct{}

	mu           sync.Mutex
	phase        Phase
	vpnConnected bool
	mirrorActive bool
	monitorArmed bool
	canceled     bool
	cancelCause  error
	finished     bool
	startAt      time.Time
	live         samples.LiveSummary

	// Stage hooks, set as the run progresses.
	abortArm func() bool
	run      *automation.Run
	padTimer simclock.Timer

	devCPU     *trace.Series
	ctlCPU     *trace.Series
	devTicker  *simclock.Ticker
	stopCtlCPU func()

	res *Result
	err error

	// Test instrumentation: how many times teardown ran (must be 1) and
	// in which order resources were released.
	teardowns     int
	teardownOrder []string
}

// Done returns a channel closed when the run has fully torn down.
func (s *Session) Done() <-chan struct{} { return s.done }

// Phase reports the session's current phase.
func (s *Session) Phase() Phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phase
}

// Spec returns the (defaults-filled) spec the session runs.
func (s *Session) Spec() ExperimentSpec { return s.spec }

// Live reports the most recent streaming summary of the monitor's
// capture (mean/P50/P95/integral so far) — the same snapshot observers
// receive in Sample.Live. Zero until the monitor arms.
func (s *Session) Live() samples.LiveSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// DroppedSamples reports how many live samples were dropped because
// observers could not keep up with the capture cadence. Always zero for
// sessions without observers.
func (s *Session) DroppedSamples() int64 {
	if s.mux == nil {
		return 0
	}
	return s.mux.droppedCount()
}

// Scripted reports the scripted duration: the workload's total wait plus
// the padding tail. The measured Duration is at least this.
func (s *Session) Scripted() time.Duration { return s.scripted }

// Result reports the outcome. It is only meaningful once Done is closed;
// before that it returns (nil, nil).
func (s *Session) Result() (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.err
}

// Cancel stops the run at the earliest safe point and tears everything
// down in reverse setup order (monitor, mirroring, VPN). It is
// idempotent and safe from any goroutine; a canceled run's Wait returns
// an error matching ErrCanceled. Cancel after completion is a no-op.
func (s *Session) Cancel() { s.cancelWith(nil) }

func (s *Session) cancelWith(cause error) {
	s.mu.Lock()
	if s.finished || s.canceled {
		s.mu.Unlock()
		return
	}
	s.canceled = true
	s.cancelCause = cause
	abortArm, run, padTimer := s.abortArm, s.run, s.padTimer
	s.mu.Unlock()

	switch {
	case padTimer != nil:
		// In the settle tail: stop the padding timer and collect now. If
		// Stop loses the race the run is completing normally anyway.
		if padTimer.Stop() {
			s.finish(s.canceledErr())
		}
	case run != nil:
		// Mid-workload: the executor aborts at the next step boundary
		// (immediately when a step wait is pending) and the completion
		// callback maps ErrAborted to the cancellation error.
		run.Abort()
	case abortArm != nil:
		// Still arming: stop the settle timer and roll the relay back;
		// the monitor never started. If the arming callback wins the
		// race it observes the canceled flag and finishes for us.
		if abortArm() {
			s.finish(s.canceledErr())
		}
	}
}

func (s *Session) canceledErr() error {
	s.mu.Lock()
	cause := s.cancelCause
	s.mu.Unlock()
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %v", ErrCanceled, cause)
}

// Wait blocks until the run completes and returns its outcome. On a
// Virtual platform clock it drives simulated time itself,
// deadline-by-deadline, blocking between advances rather than spinning;
// concurrent Waits (a campaign, or sessions waited from several
// goroutines) serialize on the platform's driver lock. Cancelling ctx
// cancels the run, tears it down, and returns the cancellation error.
func (s *Session) Wait(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	v, ok := s.clock.(*simclock.Virtual)
	if !ok {
		select {
		case <-s.done:
		case <-ctx.Done():
			s.cancelWith(context.Cause(ctx))
			<-s.done
		}
		return s.Result()
	}
	// A generous budget so a stuck workload cannot drive time forever.
	deadline := v.Now().Add(s.scripted*2 + time.Minute)
	err := s.platform.drive(ctx, v, s.done, func() time.Time { return deadline })
	if err != nil {
		if ctx.Err() != nil {
			// Under the virtual clock cancellation tears down
			// synchronously on this goroutine.
			s.cancelWith(context.Cause(ctx))
			<-s.done
			return s.Result()
		}
		// Budget blown or clock stalled: still release the hardware —
		// an abandoned session must not leave the monitor armed or the
		// VPN up for the next experimenter.
		s.cancelWith(err)
		return nil, err
	}
	return s.Result()
}

// armTransport arms the measurement-safe automation channel while USB is
// still powered.
func (s *Session) armTransport() error {
	switch s.spec.Transport {
	case TransportBluetooth:
		return s.ctl.ADB().SetTransport(s.spec.Device, adb.TransportBluetooth)
	default: // WiFi
		if err := s.ctl.ADB().EnableTCPIP(s.spec.Device); err != nil {
			return err
		}
		return s.ctl.ADB().SetTransport(s.spec.Device, adb.TransportWiFi)
	}
}

// instrument wraps the script's steps so observers see per-step
// PhaseWorkload events; without observers the script runs untouched.
func (s *Session) instrument(script *automation.Script) *automation.Script {
	if len(s.observers) == 0 {
		return script
	}
	out := automation.NewScript(script.Name())
	for _, st := range script.Steps() {
		st := st
		out.Add(st.Name, st.Wait, func() error {
			s.setPhase(PhaseWorkload, st.Name)
			if st.Do == nil {
				return nil
			}
			return st.Do()
		})
	}
	return out
}

// armed is ArmMonitor's completion callback: the relay has settled and
// the monitor is sampling (or arming failed). It starts the CPU
// instrumentation and the workload.
func (s *Session) armed(armErr error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	canceled := s.canceled
	if armErr == nil {
		s.monitorArmed = true
		s.startAt = s.clock.Now()
	}
	s.mu.Unlock()

	if canceled {
		s.finish(s.canceledErr())
		return
	}
	if armErr != nil {
		s.finish(armErr)
		return
	}

	// CPU instrumentation, from the armed instant like the monitor.
	devCPU := trace.NewSeries("device-cpu", "percent")
	devTicker := simclock.NewTicker(s.clock, s.spec.CPUSamplePeriod, func(now time.Time) {
		devCPU.MustAppend(now, s.dev.CPU().UtilAt(now))
		smp := Sample{
			Node: s.spec.Node, Device: s.spec.Device,
			At: now, CurrentMA: s.dev.CurrentMA(now),
		}
		if live, err := s.ctl.Monsoon().LiveSummary(); err == nil {
			smp.Live = live
		} else {
			// A tick can race teardown's StopMonitor on the real clock;
			// carry the last snapshot instead of a zero summary.
			smp.Live = s.Live()
		}
		s.notifySample(smp)
	})
	ctlCPU, stopCtlCPU := s.ctl.MonitorCPU(s.spec.CPUSamplePeriod)
	s.mu.Lock()
	s.devCPU, s.ctlCPU = devCPU, ctlCPU
	s.devTicker, s.stopCtlCPU = devTicker, stopCtlCPU
	s.mu.Unlock()
	s.setPhase(PhaseMonitorArmed, "")

	// Run the workload; completion flows through finish exactly once.
	s.setPhase(PhaseWorkload, "")
	exec := automation.NewExecutor(s.clock)
	run := exec.Run(s.script, s.scriptDone)
	s.mu.Lock()
	s.run = run
	s.abortArm = nil
	canceled = s.canceled
	s.mu.Unlock()
	if canceled {
		// Cancel arrived while we were arming (after the snapshot at the
		// top): it found nothing to abort, so abort the run for it.
		run.Abort()
	}
}

// scriptDone is the executor's completion callback.
func (s *Session) scriptDone(scriptErr error) {
	if scriptErr != nil {
		if errors.Is(scriptErr, automation.ErrAborted) {
			s.finish(s.canceledErr())
			return
		}
		s.finish(fmt.Errorf("core: workload: %w", scriptErr))
		return
	}
	// Hold the monitor through the padding tail, then collect.
	s.setPhase(PhaseSettle, "")
	t := s.clock.AfterFunc(s.spec.Padding, func() { s.finish(nil) })
	s.mu.Lock()
	s.run = nil
	s.padTimer = t
	canceled := s.canceled
	s.mu.Unlock()
	if canceled && t.Stop() {
		s.finish(s.canceledErr())
	}
}

// teardownSetup releases what a failed synchronous setup acquired (VPN
// and mirroring); the monitor was not armed yet.
func (s *Session) teardownSetup() {
	if s.mirrorActive {
		if sess, err := s.ctl.MirrorSession(s.spec.Device); err == nil {
			sess.Stop()
		}
		s.mirrorActive = false
	}
	if s.vpnConnected {
		s.ctl.VPN().Disconnect()
		s.vpnConnected = false
	}
}

// finish tears the run down exactly once — monitor, then mirroring, then
// VPN: the reverse of setup order — records the outcome, notifies
// observers and closes Done.
func (s *Session) finish(runErr error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	monitorArmed := s.monitorArmed
	mirrorActive := s.mirrorActive
	vpnConnected := s.vpnConnected
	devTicker, stopCtlCPU := s.devTicker, s.stopCtlCPU
	startAt := s.startAt
	s.mu.Unlock()

	if devTicker != nil {
		devTicker.Stop()
	}
	if stopCtlCPU != nil {
		stopCtlCPU()
	}
	var mirrorBytes int64
	var mirrorSess interface {
		BytesSent() int64
		Stop()
	}
	if mirrorActive {
		if sess, err := s.ctl.MirrorSession(s.spec.Device); err == nil {
			mirrorSess = sess
			mirrorBytes = sess.BytesSent()
		}
	}
	var current *trace.Series
	var stopErr error
	order := make([]string, 0, 3)
	if monitorArmed {
		current, stopErr = s.ctl.StopMonitor()
		order = append(order, "monitor")
	}
	if mirrorSess != nil {
		mirrorSess.Stop()
		order = append(order, "mirror")
	}
	if vpnConnected {
		s.ctl.VPN().Disconnect()
		order = append(order, "vpn")
	}

	var res *Result
	var err error
	switch {
	case runErr != nil:
		err = runErr
	case stopErr != nil:
		err = stopErr
	default:
		res = &Result{
			Current:           current,
			DeviceCPU:         s.devCPU,
			ControllerCPU:     s.ctlCPU,
			EnergyMAH:         current.EnergyMAH(),
			Duration:          s.clock.Now().Sub(startAt),
			MirrorUploadBytes: mirrorBytes,
		}
	}

	s.mu.Lock()
	s.res, s.err = res, err
	s.phase = PhaseDone
	s.teardowns++
	s.teardownOrder = order
	s.mu.Unlock()

	// Flush the live-sample queue so observers see every accepted sample
	// before the terminal phase event and before Done closes.
	if s.mux != nil {
		s.mux.stop()
	}
	s.notifyPhase(PhaseChange{
		Node: s.spec.Node, Device: s.spec.Device,
		Phase: PhaseDone, At: s.clock.Now(), Err: err,
	})
	close(s.done)
	if s.onDone != nil {
		s.onDone(res, err)
	}
}

// setPhase advances the session's phase (monotonically) and notifies
// observers.
func (s *Session) setPhase(p Phase, step string) {
	s.mu.Lock()
	if p > s.phase {
		s.phase = p
	}
	s.mu.Unlock()
	s.notifyPhase(PhaseChange{
		Node: s.spec.Node, Device: s.spec.Device,
		Phase: p, At: s.clock.Now(), Step: step,
	})
}

func (s *Session) notifyPhase(e PhaseChange) {
	for _, o := range s.observers {
		o.OnPhase(e)
	}
}

func (s *Session) notifySample(smp Sample) {
	s.mu.Lock()
	// Live summaries only move forward; never regress the handle's
	// snapshot on a tick that lost a race with teardown.
	if smp.Live.N >= s.live.N {
		s.live = smp.Live
	}
	s.mu.Unlock()
	if s.mux != nil {
		s.mux.post(smp)
	}
}
