package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

// sleepWorkload builds a workload of n pure waits of step each — enough
// structure to cancel mid-flight without needing installed apps.
func sleepWorkload(n int, step time.Duration) func(automation.Driver) *automation.Script {
	return func(automation.Driver) *automation.Script {
		s := automation.NewScript("sleeper")
		for i := 0; i < n; i++ {
			s.Sleep(step)
		}
		return s
	}
}

// recorder collects observer events, safely across goroutines (real
// clock timers fire concurrently).
type recorder struct {
	mu      sync.Mutex
	phases  []PhaseChange
	samples []Sample
}

func (r *recorder) OnPhase(e PhaseChange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phases = append(r.phases, e)
}

func (r *recorder) OnSample(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, s)
}

func (r *recorder) phaseSeq() []Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Phase
	for _, e := range r.phases {
		if len(out) == 0 || out[len(out)-1] != e.Phase {
			out = append(out, e.Phase)
		}
	}
	return out
}

func assertTornDown(t *testing.T, r *rig, s *Session) {
	t.Helper()
	if r.ctl.VPN().Active() != nil {
		t.Error("VPN left connected")
	}
	if sess, err := r.ctl.MirrorSession(r.serial); err == nil && sess.Active() {
		t.Error("mirroring left active")
	}
	if r.ctl.Measuring() != "" {
		t.Error("monitor still held")
	}
	s.mu.Lock()
	teardowns := s.teardowns
	s.mu.Unlock()
	if teardowns != 1 {
		t.Errorf("teardown ran %d times, want exactly 1", teardowns)
	}
}

func TestCancelMidWorkloadVirtual(t *testing.T) {
	r := newRig(t)
	spec := ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Mirroring: true, VPNLocation: "Bunkyo",
		Workload: sleepWorkload(60, time.Second),
	}
	sess, err := r.plat.StartExperiment(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from a clock callback halfway through the workload — the
	// deterministic way to cancel under the virtual clock.
	r.clk.AfterFunc(30*time.Second, func() { sess.Cancel() })
	res, err := sess.Wait(context.Background())
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	assertTornDown(t, r, sess)
	// Teardown happens in reverse setup order: monitor, mirror, VPN.
	sess.mu.Lock()
	order := strings.Join(sess.teardownOrder, ",")
	sess.mu.Unlock()
	if order != "monitor,mirror,vpn" {
		t.Fatalf("teardown order = %s, want monitor,mirror,vpn", order)
	}
	// Cancel is idempotent after completion.
	sess.Cancel()
	sess.Cancel()
	assertTornDown(t, r, sess)
	// The device is free for the next experimenter.
	if _, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Workload: sleepWorkload(2, time.Second),
	}); err != nil {
		t.Fatalf("follow-up run after cancel: %v", err)
	}
}

func TestCancelMidWorkloadRealClock(t *testing.T) {
	clk := simclock.Real()
	plat, ctl, dev := newRealRig(t, clk)
	serial := dev.Serial()
	spec := ExperimentSpec{
		Node: "node1", Device: serial, SampleRate: 100,
		Mirroring: true, VPNLocation: "Bunkyo",
		Padding:         50 * time.Millisecond,
		CPUSamplePeriod: 20 * time.Millisecond,
		Workload:        sleepWorkload(40, 50*time.Millisecond),
	}
	sess, err := plat.StartExperiment(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		sess.Cancel()
	}()
	res, err := sess.Wait(context.Background())
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ctl.VPN().Active() != nil {
		t.Error("VPN left connected")
	}
	if ms, err := ctl.MirrorSession(serial); err == nil && ms.Active() {
		t.Error("mirroring left active")
	}
	if ctl.Measuring() != "" {
		t.Error("monitor still held")
	}
	sess.mu.Lock()
	teardowns := sess.teardowns
	sess.mu.Unlock()
	if teardowns != 1 {
		t.Errorf("teardown ran %d times, want exactly 1", teardowns)
	}
}

func TestContextCancelTearsDown(t *testing.T) {
	r := newRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := r.plat.StartExperiment(ctx, ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		VPNLocation: "Bunkyo",
		Workload:    sleepWorkload(30, time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	res, err := sess.Wait(ctx)
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	assertTornDown(t, r, sess)
	if err := ctx.Err(); err == nil {
		t.Fatal("ctx not canceled?")
	}
	// A pre-canceled context refuses to start at all.
	if _, err := r.plat.StartExperiment(ctx, ExperimentSpec{
		Node: "node1", Device: r.serial,
		Workload: sleepWorkload(1, time.Second),
	}); err == nil {
		t.Fatal("StartExperiment accepted a canceled context")
	}
}

func TestPhaseObserverSequence(t *testing.T) {
	r := newRig(t)
	r.dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1<<20))
	r.dev.Install(video.NewPlayer("/sdcard/v.mp4"))
	rec := &recorder{}
	res, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Mirroring: true, VPNLocation: "Santa Clara",
		Workload: func(drv automation.Driver) *automation.Script {
			s := automation.NewScript("video")
			s.Add("launch", 20*time.Second, func() error {
				_, err := drv.LaunchApp(video.PackageName)
				return err
			})
			return s
		},
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy measured")
	}
	want := []Phase{PhaseVPNUp, PhaseTransportArmed, PhaseMirrorOn,
		PhaseMonitorArmed, PhaseWorkload, PhaseSettle, PhaseDone}
	got := rec.phaseSeq()
	if len(got) != len(want) {
		t.Fatalf("phase sequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase sequence = %v, want %v", got, want)
		}
	}
	// Per-step events carry the step name.
	stepSeen := false
	rec.mu.Lock()
	for _, e := range rec.phases {
		if e.Phase == PhaseWorkload && e.Step == "launch" {
			stepSeen = true
		}
		if e.Phase == PhaseDone && e.Err != nil {
			t.Errorf("PhaseDone carried err %v", e.Err)
		}
	}
	rec.mu.Unlock()
	if !stepSeen {
		t.Fatal("no workload step event observed")
	}
	// Live current samples flowed during the run.
	rec.mu.Lock()
	n := len(rec.samples)
	positive := 0
	for _, s := range rec.samples {
		if s.CurrentMA > 0 {
			positive++
		}
	}
	rec.mu.Unlock()
	if n < 10 || positive == 0 {
		t.Fatalf("samples = %d (positive %d), want a live stream", n, positive)
	}
}

// TestBlockedObserverDoesNotStallCapture pins the delivery contract: an
// OnSample callback that blocks must not stall the Monsoon capture loop
// or the CPU monitors — live samples are fanned out on a dedicated
// delivery goroutine. The helper goroutine only releases the blocked
// observer after the monitor has provably captured thousands of samples
// past the block; with synchronous (capture-path) delivery the clock
// driver would be stuck inside the callback and Live().N could never
// advance, so the watchdog would fire.
func TestBlockedObserverDoesNotStallCapture(t *testing.T) {
	r := newRig(t)
	release := make(chan struct{})
	var blockedOnce sync.Once
	blocked := make(chan struct{})
	rec := &recorder{}
	blocker := ObserverFuncs{Sample: func(Sample) {
		blockedOnce.Do(func() {
			close(blocked)
			<-release
		})
	}}
	sess, err := r.plat.StartExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 1000,
		CPUSamplePeriod: 100 * time.Millisecond,
		Workload:        sleepWorkload(10, time.Second),
	}, rec, blocker)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		select {
		case <-blocked:
		case <-time.After(10 * time.Second):
			t.Error("observer never received a sample")
			close(release)
			return
		}
		// The observer is now blocked. Capture must keep flowing: wait
		// for the monitor-side live summary to advance well past the
		// blocking instant, then release.
		watchdog := time.After(10 * time.Second)
		for sess.Live().N < 5000 {
			select {
			case <-watchdog:
				t.Errorf("capture stalled behind a blocked observer: live N = %d", sess.Live().N)
				close(release)
				return
			case <-time.After(time.Millisecond):
			}
		}
		close(release)
	}()
	res, err := sess.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 10 s workload + 1 s padding at 1 kHz.
	if res.Current.Len() < 10000 {
		t.Fatalf("current trace %d samples, capture was stalled", res.Current.Len())
	}
	if res.DeviceCPU.Len() < 100 {
		t.Fatalf("device CPU trace %d samples, ticker was stalled", res.DeviceCPU.Len())
	}
	// Every accepted sample was delivered before Wait returned, and the
	// 1024-slot queue absorbed the ~110-sample backlog without drops.
	rec.mu.Lock()
	delivered := len(rec.samples)
	rec.mu.Unlock()
	if delivered < 100 {
		t.Fatalf("only %d samples delivered", delivered)
	}
	if d := sess.DroppedSamples(); d != 0 {
		t.Fatalf("%d samples dropped with an ample queue", d)
	}
}

// TestLiveSummariesFlowToObservers checks the satellite contract: each
// live Sample carries the monitor's streaming summary-so-far, summaries
// are monotone in N, and the final one agrees with the returned trace.
func TestLiveSummariesFlowToObservers(t *testing.T) {
	r := newRig(t)
	rec := &recorder{}
	res, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 500,
		Workload: sleepWorkload(8, time.Second),
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.samples) < 5 {
		t.Fatalf("only %d live samples", len(rec.samples))
	}
	prevN := -1
	for i, smp := range rec.samples {
		ls := smp.Live
		if ls.N == 0 {
			t.Fatalf("sample %d carried no live summary", i)
		}
		if ls.N < prevN {
			t.Fatalf("live N went backwards: %d after %d", ls.N, prevN)
		}
		prevN = ls.N
		if ls.P50 > ls.P95 || ls.Min > ls.Max || ls.Mean <= 0 {
			t.Fatalf("implausible live summary: %+v", ls)
		}
	}
	last := rec.samples[len(rec.samples)-1].Live
	if last.N > res.Current.Len() {
		t.Fatalf("live N %d exceeds final trace %d", last.N, res.Current.Len())
	}
	final := res.Current.Live()
	if final.N != res.Current.Len() {
		t.Fatalf("final live summary N = %d, trace len %d", final.N, res.Current.Len())
	}
	if final.IntegralSeconds/3600 != res.EnergyMAH {
		t.Fatal("energy disagrees with live integral")
	}
}

// TestCancelFromObserverCallback exercises the re-entrant stop path: an
// observer cancelling its own session from OnSample must not deadlock
// the delivery goroutine against the teardown flush.
func TestCancelFromObserverCallback(t *testing.T) {
	clk := simclock.Real()
	plat, _, dev := newRealRig(t, clk)
	var sess *Session
	started := make(chan struct{})
	var cancelOnce sync.Once
	obs := ObserverFuncs{Sample: func(Sample) {
		cancelOnce.Do(func() {
			<-started
			sess.Cancel()
		})
	}}
	var err error
	sess, err = plat.StartExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: dev.Serial(), SampleRate: 200,
		CPUSamplePeriod: 10 * time.Millisecond,
		Padding:         20 * time.Millisecond,
		Workload:        sleepWorkload(50, 50*time.Millisecond),
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	close(started)
	done := make(chan struct{})
	go func() {
		sess.Wait(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancel from observer callback deadlocked the session")
	}
	if _, err := sess.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestFailedSetupReleasesDeliveryGoroutine guards the obsMux lifecycle:
// every failed StartExperiment with observers must stop the per-session
// delivery goroutine, including the VPN-connect branch that fails
// before the shared fail helper exists.
func TestFailedSetupReleasesDeliveryGoroutine(t *testing.T) {
	r := newRig(t)
	obs := ObserverFuncs{Sample: func(Sample) {}}
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := r.plat.StartExperiment(context.Background(), ExperimentSpec{
			Node: "node1", Device: r.serial,
			VPNLocation: "nowhere-exit",
			Workload:    sleepWorkload(1, time.Second),
		}, obs); err == nil {
			t.Fatal("bad VPN location accepted")
		}
	}
	// Give stopped delivery goroutines a beat to exit, then compare
	// with a generous margin for unrelated runtime goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+10 {
		t.Fatalf("goroutines grew from %d to %d across 50 failed starts", before, after)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	r := newRig(t)
	wl := sleepWorkload(1, time.Second)
	cases := []struct {
		name string
		spec ExperimentSpec
		want error
	}{
		{"no workload", ExperimentSpec{Node: "node1", Device: r.serial}, ErrNoWorkload},
		{"usb", ExperimentSpec{Node: "node1", Device: r.serial, Transport: TransportUSB, Workload: wl}, ErrUSBTransport},
		{"empty node", ExperimentSpec{Device: r.serial, Workload: wl}, ErrUnknownNode},
		{"unknown node", ExperimentSpec{Node: "nowhere", Device: r.serial, Workload: wl}, ErrUnknownNode},
		{"empty device", ExperimentSpec{Node: "node1", Workload: wl}, ErrUnknownDevice},
		{"unknown device", ExperimentSpec{Node: "node1", Device: "nodevice", Workload: wl}, ErrUnknownDevice},
	}
	for _, tc := range cases {
		_, err := r.plat.RunExperiment(context.Background(), tc.spec)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStartExperimentFuncShim(t *testing.T) {
	r := newRig(t)
	var got *Result
	var gotErr error
	fired := 0
	scripted, err := r.plat.StartExperimentFunc(ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Workload: sleepWorkload(3, 10*time.Second),
	}, func(res *Result, err error) {
		got, gotErr = res, err
		fired++
	})
	if err != nil {
		t.Fatal(err)
	}
	if scripted != 31*time.Second { // 3×10 s + 1 s default padding
		t.Fatalf("scripted = %v", scripted)
	}
	r.clk.Advance(2 * scripted)
	if fired != 1 {
		t.Fatalf("done fired %d times", fired)
	}
	if gotErr != nil || got == nil || got.EnergyMAH <= 0 {
		t.Fatalf("outcome = %v, %v", got, gotErr)
	}
}

// newRealRig assembles a platform on the real clock for the real-time
// cancellation tests.
func newRealRig(t *testing.T, clk simclock.Clock) (*Platform, *controller.Controller, *device.Device) {
	t.Helper()
	plat, err := NewPlatform(clk, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(clk, device.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
		t.Fatal(err)
	}
	return plat, ctl, dev
}
