package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

// sleepWorkload builds a workload of n pure waits of step each — enough
// structure to cancel mid-flight without needing installed apps.
func sleepWorkload(n int, step time.Duration) func(automation.Driver) *automation.Script {
	return func(automation.Driver) *automation.Script {
		s := automation.NewScript("sleeper")
		for i := 0; i < n; i++ {
			s.Sleep(step)
		}
		return s
	}
}

// recorder collects observer events, safely across goroutines (real
// clock timers fire concurrently).
type recorder struct {
	mu      sync.Mutex
	phases  []PhaseChange
	samples []Sample
}

func (r *recorder) OnPhase(e PhaseChange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phases = append(r.phases, e)
}

func (r *recorder) OnSample(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, s)
}

func (r *recorder) phaseSeq() []Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Phase
	for _, e := range r.phases {
		if len(out) == 0 || out[len(out)-1] != e.Phase {
			out = append(out, e.Phase)
		}
	}
	return out
}

func assertTornDown(t *testing.T, r *rig, s *Session) {
	t.Helper()
	if r.ctl.VPN().Active() != nil {
		t.Error("VPN left connected")
	}
	if sess, err := r.ctl.MirrorSession(r.serial); err == nil && sess.Active() {
		t.Error("mirroring left active")
	}
	if r.ctl.Measuring() != "" {
		t.Error("monitor still held")
	}
	s.mu.Lock()
	teardowns := s.teardowns
	s.mu.Unlock()
	if teardowns != 1 {
		t.Errorf("teardown ran %d times, want exactly 1", teardowns)
	}
}

func TestCancelMidWorkloadVirtual(t *testing.T) {
	r := newRig(t)
	spec := ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Mirroring: true, VPNLocation: "Bunkyo",
		Workload: sleepWorkload(60, time.Second),
	}
	sess, err := r.plat.StartExperiment(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from a clock callback halfway through the workload — the
	// deterministic way to cancel under the virtual clock.
	r.clk.AfterFunc(30*time.Second, func() { sess.Cancel() })
	res, err := sess.Wait(context.Background())
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	assertTornDown(t, r, sess)
	// Teardown happens in reverse setup order: monitor, mirror, VPN.
	sess.mu.Lock()
	order := strings.Join(sess.teardownOrder, ",")
	sess.mu.Unlock()
	if order != "monitor,mirror,vpn" {
		t.Fatalf("teardown order = %s, want monitor,mirror,vpn", order)
	}
	// Cancel is idempotent after completion.
	sess.Cancel()
	sess.Cancel()
	assertTornDown(t, r, sess)
	// The device is free for the next experimenter.
	if _, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Workload: sleepWorkload(2, time.Second),
	}); err != nil {
		t.Fatalf("follow-up run after cancel: %v", err)
	}
}

func TestCancelMidWorkloadRealClock(t *testing.T) {
	clk := simclock.Real()
	plat, ctl, dev := newRealRig(t, clk)
	serial := dev.Serial()
	spec := ExperimentSpec{
		Node: "node1", Device: serial, SampleRate: 100,
		Mirroring: true, VPNLocation: "Bunkyo",
		Padding:         50 * time.Millisecond,
		CPUSamplePeriod: 20 * time.Millisecond,
		Workload:        sleepWorkload(40, 50*time.Millisecond),
	}
	sess, err := plat.StartExperiment(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		sess.Cancel()
	}()
	res, err := sess.Wait(context.Background())
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ctl.VPN().Active() != nil {
		t.Error("VPN left connected")
	}
	if ms, err := ctl.MirrorSession(serial); err == nil && ms.Active() {
		t.Error("mirroring left active")
	}
	if ctl.Measuring() != "" {
		t.Error("monitor still held")
	}
	sess.mu.Lock()
	teardowns := sess.teardowns
	sess.mu.Unlock()
	if teardowns != 1 {
		t.Errorf("teardown ran %d times, want exactly 1", teardowns)
	}
}

func TestContextCancelTearsDown(t *testing.T) {
	r := newRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := r.plat.StartExperiment(ctx, ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		VPNLocation: "Bunkyo",
		Workload:    sleepWorkload(30, time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	res, err := sess.Wait(ctx)
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	assertTornDown(t, r, sess)
	if err := ctx.Err(); err == nil {
		t.Fatal("ctx not canceled?")
	}
	// A pre-canceled context refuses to start at all.
	if _, err := r.plat.StartExperiment(ctx, ExperimentSpec{
		Node: "node1", Device: r.serial,
		Workload: sleepWorkload(1, time.Second),
	}); err == nil {
		t.Fatal("StartExperiment accepted a canceled context")
	}
}

func TestPhaseObserverSequence(t *testing.T) {
	r := newRig(t)
	r.dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1<<20))
	r.dev.Install(video.NewPlayer("/sdcard/v.mp4"))
	rec := &recorder{}
	res, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Mirroring: true, VPNLocation: "Santa Clara",
		Workload: func(drv automation.Driver) *automation.Script {
			s := automation.NewScript("video")
			s.Add("launch", 20*time.Second, func() error {
				_, err := drv.LaunchApp(video.PackageName)
				return err
			})
			return s
		},
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy measured")
	}
	want := []Phase{PhaseVPNUp, PhaseTransportArmed, PhaseMirrorOn,
		PhaseMonitorArmed, PhaseWorkload, PhaseSettle, PhaseDone}
	got := rec.phaseSeq()
	if len(got) != len(want) {
		t.Fatalf("phase sequence = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase sequence = %v, want %v", got, want)
		}
	}
	// Per-step events carry the step name.
	stepSeen := false
	rec.mu.Lock()
	for _, e := range rec.phases {
		if e.Phase == PhaseWorkload && e.Step == "launch" {
			stepSeen = true
		}
		if e.Phase == PhaseDone && e.Err != nil {
			t.Errorf("PhaseDone carried err %v", e.Err)
		}
	}
	rec.mu.Unlock()
	if !stepSeen {
		t.Fatal("no workload step event observed")
	}
	// Live current samples flowed during the run.
	rec.mu.Lock()
	n := len(rec.samples)
	positive := 0
	for _, s := range rec.samples {
		if s.CurrentMA > 0 {
			positive++
		}
	}
	rec.mu.Unlock()
	if n < 10 || positive == 0 {
		t.Fatalf("samples = %d (positive %d), want a live stream", n, positive)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	r := newRig(t)
	wl := sleepWorkload(1, time.Second)
	cases := []struct {
		name string
		spec ExperimentSpec
		want error
	}{
		{"no workload", ExperimentSpec{Node: "node1", Device: r.serial}, ErrNoWorkload},
		{"usb", ExperimentSpec{Node: "node1", Device: r.serial, Transport: TransportUSB, Workload: wl}, ErrUSBTransport},
		{"empty node", ExperimentSpec{Device: r.serial, Workload: wl}, ErrUnknownNode},
		{"unknown node", ExperimentSpec{Node: "nowhere", Device: r.serial, Workload: wl}, ErrUnknownNode},
		{"empty device", ExperimentSpec{Node: "node1", Workload: wl}, ErrUnknownDevice},
		{"unknown device", ExperimentSpec{Node: "node1", Device: "nodevice", Workload: wl}, ErrUnknownDevice},
	}
	for _, tc := range cases {
		_, err := r.plat.RunExperiment(context.Background(), tc.spec)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStartExperimentFuncShim(t *testing.T) {
	r := newRig(t)
	var got *Result
	var gotErr error
	fired := 0
	scripted, err := r.plat.StartExperimentFunc(ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Workload: sleepWorkload(3, 10*time.Second),
	}, func(res *Result, err error) {
		got, gotErr = res, err
		fired++
	})
	if err != nil {
		t.Fatal(err)
	}
	if scripted != 31*time.Second { // 3×10 s + 1 s default padding
		t.Fatalf("scripted = %v", scripted)
	}
	r.clk.Advance(2 * scripted)
	if fired != 1 {
		t.Fatalf("done fired %d times", fired)
	}
	if gotErr != nil || got == nil || got.EnergyMAH <= 0 {
		t.Fatalf("outcome = %v, %v", got, gotErr)
	}
}

// newRealRig assembles a platform on the real clock for the real-time
// cancellation tests.
func newRealRig(t *testing.T, clk simclock.Clock) (*Platform, *controller.Controller, *device.Device) {
	t.Helper()
	plat, err := NewPlatform(clk, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(clk, device.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
		t.Fatal(err)
	}
	return plat, ctl, dev
}
