// Package core is BatteryLab's platform layer — the paper's primary
// contribution: the federation of independent battery-testing setups
// into one distributed measurement platform. It ties the access server
// to vantage points through the §3.4 join workflow (DNS registration,
// wildcard certificate deployment, key exchange), installs the
// platform's maintenance jobs, and provides the experiment runner that
// orchestrates an end-to-end battery measurement: automation channel
// setup, optional device mirroring, monitor arming, workload execution
// and trace collection.
package core

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"sync"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/certs"
	"batterylab/internal/controller"
	"batterylab/internal/dnsreg"
	"batterylab/internal/simclock"
)

// Domain is the platform's DNS zone.
const Domain = "batterylab.dev"

// Platform is one BatteryLab deployment.
type Platform struct {
	clock simclock.Clock
	seed  uint64

	Access *accessserver.Server
	Zone   *dnsreg.Zone
	CA     *certs.CA

	// workloads is the named-workload registry the v1 remote API
	// compiles declarative specs against.
	workloads *WorkloadRegistry

	mu    sync.Mutex
	vps   map[string]*controller.Controller
	certs map[string]*certs.Certificate // node -> deployed cert

	// driveMu serializes virtual-clock driving across concurrent Waits
	// (sessions and campaigns), keeping event order deterministic.
	driveMu sync.Mutex
}

// NewPlatform assembles an empty platform: access server, DNS zone and
// certificate authority.
func NewPlatform(clock simclock.Clock, seed uint64) (*Platform, error) {
	ca, err := certs.NewCA("BatteryLab Root CA", clock.Now())
	if err != nil {
		return nil, err
	}
	p := &Platform{
		clock:     clock,
		seed:      seed,
		Access:    accessserver.New(clock, accessserver.Config{}),
		Zone:      dnsreg.NewZone(Domain),
		CA:        ca,
		workloads: NewWorkloadRegistry(),
		vps:       make(map[string]*controller.Controller),
		certs:     make(map[string]*certs.Certificate),
	}
	// Wire the v1 remote-execution API: the access server compiles
	// declarative specs through the platform's workload registry.
	p.Access.SetSpecBackend(specBackend{p})
	return p, nil
}

// Clock reports the platform clock.
func (p *Platform) Clock() simclock.Clock { return p.clock }

// Join runs the §3.4 membership workflow for a vantage point hosted
// in-process: approve and register the node, add its DNS record, issue
// and deploy the wildcard certificate. It returns the vantage point's
// FQDN.
func (p *Platform) Join(ctl *controller.Controller, addr string) (string, error) {
	name := ctl.Name()
	p.Access.Nodes.Approve(name)
	node := accessserver.NewLocalNode(ctl)
	if err := p.Access.Nodes.Register(node); err != nil {
		return "", err
	}
	fqdn, err := p.Zone.Register(name, addr)
	if err != nil {
		p.Access.Nodes.Remove(name)
		return "", err
	}
	cert, err := p.deployCert(node)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	p.vps[name] = ctl
	p.certs[name] = cert
	p.mu.Unlock()
	p.Access.Kick()
	return fqdn, nil
}

// deployCert issues (or reuses) the wildcard certificate and pushes it
// to the node.
func (p *Platform) deployCert(node accessserver.Node) (*certs.Certificate, error) {
	cert, err := p.CA.IssueWildcard(Domain, 0, p.clock.Now())
	if err != nil {
		return nil, err
	}
	_, err = node.Exec("deploy_cert",
		base64.StdEncoding.EncodeToString(cert.CertPEM),
		base64.StdEncoding.EncodeToString(cert.KeyPEM))
	if err != nil {
		return nil, fmt.Errorf("core: deploying cert to %s: %w", node.Name(), err)
	}
	return cert, nil
}

// Controller returns a joined vantage point by name.
func (p *Platform) Controller(name string) (*controller.Controller, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctl, ok := p.vps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return ctl, nil
}

// drive advances a virtual clock deadline-by-deadline until done closes,
// ctx is canceled, or the next pending timer lies beyond deadline(). It
// replaces the old fixed-increment spin loop: every iteration either
// fires at least one timer or returns, and concurrent drivers block on
// the platform's driver lock instead of burning CPU.
func (p *Platform) drive(ctx context.Context, v *simclock.Virtual, done <-chan struct{}, deadline func() time.Time) error {
	for {
		select {
		case <-done:
			return nil
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		p.driveMu.Lock()
		// Another driver may have completed our run while we waited for
		// the lock.
		select {
		case <-done:
			p.driveMu.Unlock()
			return nil
		default:
		}
		next, ok := v.NextDeadline()
		if !ok {
			p.driveMu.Unlock()
			return errors.New("core: run stalled: no pending timers on the virtual clock")
		}
		if dl := deadline(); next.After(dl) {
			p.driveMu.Unlock()
			return fmt.Errorf("core: run did not finish within its time budget (next event %v past %v)", next, dl)
		}
		v.RunUntil(next)
		p.driveMu.Unlock()
	}
}

// VantagePoints lists joined vantage point names via the DNS zone.
func (p *Platform) VantagePoints() []string { return p.Zone.List() }

// DeployedCert reports the certificate deployed at a node.
func (p *Platform) DeployedCert(name string) (*certs.Certificate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.certs[name]
	if !ok {
		return nil, fmt.Errorf("core: no certificate for %q", name)
	}
	return c, nil
}

// InstallMaintenanceJobs starts the platform's recurring tasks (§3.1):
// the Monsoon-off safety sweep and wildcard certificate renewal. It
// returns a stop function.
func (p *Platform) InstallMaintenanceJobs() (stop func()) {
	stopSafety := p.Access.Cron("monsoon-safety", 10*time.Minute, func() {
		p.mu.Lock()
		ctls := make([]*controller.Controller, 0, len(p.vps))
		for _, c := range p.vps {
			ctls = append(ctls, c)
		}
		p.mu.Unlock()
		for _, c := range ctls {
			c.SafetyCheck()
		}
	})
	stopRenew := p.Access.Cron("cert-renewal", 24*time.Hour, func() {
		p.RenewCertificates()
	})
	return func() {
		stopSafety()
		stopRenew()
	}
}

// RenewCertificates re-issues and redeploys every certificate that is
// inside the renewal window, returning how many were renewed.
func (p *Platform) RenewCertificates() int {
	p.mu.Lock()
	type target struct {
		name string
		ctl  *controller.Controller
		cert *certs.Certificate
	}
	var targets []target
	for name, c := range p.vps {
		targets = append(targets, target{name, c, p.certs[name]})
	}
	p.mu.Unlock()

	renewed := 0
	for _, t := range targets {
		if t.cert != nil && !certs.NeedsRenewal(t.cert.Leaf, p.clock.Now()) {
			continue
		}
		node := accessserver.NewLocalNode(t.ctl)
		cert, err := p.deployCert(node)
		if err != nil {
			continue
		}
		p.mu.Lock()
		p.certs[t.name] = cert
		p.mu.Unlock()
		renewed++
	}
	return renewed
}
