package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"sync/atomic"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
)

// This file bridges the experiment runner into the access server's job
// queue — the paper's actual workflow (§3.1): experimenters create jobs,
// an admin approves the pipeline, the queue dispatches when the target
// device is free, and the power-meter logs land in the job's workspace.
// Since the v1 remote API the same pipeline body also backs spec
// builds: phase transitions and live samples flow into the build's
// Feed, where the streaming endpoints pick them up, and the finished
// run leaves a wire-level summary on the build.

// Artifact names a measurement build saves into its workspace.
const (
	ArtifactCurrentCSV    = "current.csv"
	ArtifactCurrentTrace  = "current.trace"
	ArtifactDeviceCPU     = "device-cpu.csv"
	ArtifactControllerCPU = "controller-cpu.csv"
)

// MeasurementJob wraps an ExperimentSpec as an access-server pipeline
// body. The build succeeds when the measurement completes; the current
// trace is stored as "current.csv" plus the compact binary
// "current.trace" (trace format v2 — at 5 kHz the CSV is ~3× larger),
// and the CPU traces as "device-cpu.csv" / "controller-cpu.csv" in the
// build workspace. The session's phase events and live samples are
// forwarded to the build's feed, and Session.Cancel is registered as
// the build's cancel hook, so remote clients can stream progress and
// abort mid-run.
func (p *Platform) MeasurementJob(spec ExperimentSpec) accessserver.RunFunc {
	return func(ctx *accessserver.BuildContext, done func(error)) {
		// Per-attempt copy: the captured spec is shared across dispatch
		// attempts of this RunFunc, and an abandoned attempt may still
		// be reading it while a retry runs.
		spec := spec
		// Fallback placement: the scheduler may have leased this attempt
		// to a different vantage point than the spec named (the original
		// died mid-campaign). The run follows the build context — the
		// spec's node/device are only the preferred placement.
		if name := ctx.Node.Name(); name != spec.Node && ctx.Device != "" {
			ctx.Logf("placed on fallback node %s device %s (spec named %s/%s)",
				name, ctx.Device, spec.Node, spec.Device)
			spec.Node = name
			spec.Device = ctx.Device
		}
		feed := ctx.Build.Feed()
		var obs []Observer
		if feed != nil {
			obs = append(obs, feedObserver{build: ctx.Build.ID, feed: feed})
		}
		var sessRef atomic.Pointer[Session]
		sess, err := p.start(context.Background(), spec, obs, func(res *Result, err error) {
			if ctx.Stale() {
				// The scheduler reclaimed this attempt (failover) and a
				// retry owns the build now: writing artifacts or the
				// summary here would overwrite the live attempt's data.
				// done() would be ignored as stale anyway.
				return
			}
			if err != nil {
				ctx.Logf("measurement failed: %v", err)
				done(err)
				return
			}
			saveSeries := func(name string, write func(*strings.Builder) error) error {
				var b strings.Builder
				if err := write(&b); err != nil {
					return err
				}
				ctx.Build.Workspace().Save(name, []byte(b.String()))
				return nil
			}
			if err := saveSeries(ArtifactCurrentCSV, func(b *strings.Builder) error { return res.Current.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			var bin bytes.Buffer
			if err := res.Current.WriteBinary(&bin); err != nil {
				done(err)
				return
			}
			ctx.Build.Workspace().Save(ArtifactCurrentTrace, bin.Bytes())
			if err := saveSeries(ArtifactDeviceCPU, func(b *strings.Builder) error { return res.DeviceCPU.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			if err := saveSeries(ArtifactControllerCPU, func(b *strings.Builder) error { return res.ControllerCPU.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			summary := res.Current.Summary()
			live := res.Current.Live()
			var dropped int64
			if sess := sessRef.Load(); sess != nil {
				dropped = sess.DroppedSamples()
			}
			ctx.Build.SetSummary(api.RunSummary{
				Samples:            int64(res.Current.Len()),
				MeanMA:             summary.Mean,
				P50MA:              live.P50,
				P95MA:              live.P95,
				EnergyMAH:          res.EnergyMAH,
				DurationNS:         int64(res.Duration),
				MirrorUploadBytes:  res.MirrorUploadBytes,
				DroppedLiveSamples: dropped,
			})
			ctx.Logf("measured %s: %.2f mAh over %s (%d samples)",
				spec.Device, res.EnergyMAH, res.Duration, res.Current.Len())
			done(nil)
		})
		if err != nil {
			done(err)
			return
		}
		sessRef.Store(sess)
		// Attempt-gated: if the scheduler failed this attempt over while
		// setup blocked, the registration is dropped instead of
		// displacing the retry's cancel hook.
		ctx.OnCancel(sess.Cancel)
		ctx.Logf("experiment scheduled: ~%s of device time", sess.Scripted())
	}
}

// feedObserver forwards a session's progress into its build's feed.
// OnPhase runs on the clock-dispatch context and OnSample on the
// session's delivery goroutine; Feed appends never block either (the
// buffers are bounded, drop-under-backpressure), so a slow or stalled
// HTTP consumer downstream cannot stall the capture loop.
type feedObserver struct {
	build int
	feed  *accessserver.Feed
}

// OnPhase implements Observer.
func (o feedObserver) OnPhase(e PhaseChange) {
	ev := api.BuildEvent{
		Build:  o.build,
		Node:   e.Node,
		Device: e.Device,
		Phase:  e.Phase.String(),
		Step:   e.Step,
		AtNS:   e.At.UnixNano(),
	}
	if e.Err != nil {
		ev.Error = e.Err.Error()
	}
	o.feed.PostEvent(ev)
}

// OnSample implements Observer.
func (o feedObserver) OnSample(s Sample) {
	o.feed.PostSample(api.SamplePoint{
		AtNS:      s.At.UnixNano(),
		CurrentMA: s.CurrentMA,
		N:         int64(s.Live.N),
		MeanMA:    s.Live.Mean,
		P50MA:     s.Live.P50,
		P95MA:     s.Live.P95,
		IntegralS: s.Live.IntegralSeconds,
	})
}

// SubmitExperiment creates, and for admins immediately approves and
// queues, a measurement job for spec. Experimenter-created jobs are left
// awaiting the §3.1 admin approval; the returned build is nil in that
// case. The spec is validated up front so a malformed submission fails
// with a typed error before entering the queue.
func (p *Platform) SubmitExperiment(user *accessserver.User, jobName string, spec ExperimentSpec) (*accessserver.Build, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cons := accessserver.Constraints{Node: spec.Node, Device: spec.Device}
	if _, err := p.Access.CreateJob(user, jobName, cons, p.MeasurementJob(spec)); err != nil {
		return nil, err
	}
	job, err := p.Access.Job(jobName)
	if err != nil {
		return nil, err
	}
	if !job.Approved() {
		return nil, nil // awaiting admin approval
	}
	b, err := p.Access.Submit(user, jobName)
	if err != nil {
		return nil, fmt.Errorf("core: submitting %s: %w", jobName, err)
	}
	return b, nil
}
