package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"batterylab/internal/accessserver"
)

// This file bridges the experiment runner into the access server's job
// queue — the paper's actual workflow (§3.1): experimenters create jobs,
// an admin approves the pipeline, the queue dispatches when the target
// device is free, and the power-meter logs land in the job's workspace.

// MeasurementJob wraps an ExperimentSpec as an access-server pipeline
// body. The build succeeds when the measurement completes; the current
// trace is stored as "current.csv" plus the compact binary
// "current.trace" (trace format v2 — at 5 kHz the CSV is ~3× larger),
// and the CPU traces as "device-cpu.csv" / "controller-cpu.csv" in the
// build workspace.
func (p *Platform) MeasurementJob(spec ExperimentSpec) accessserver.RunFunc {
	return func(ctx *accessserver.BuildContext, done func(error)) {
		sess, err := p.start(context.Background(), spec, nil, func(res *Result, err error) {
			if err != nil {
				ctx.Logf("measurement failed: %v", err)
				done(err)
				return
			}
			saveSeries := func(name string, write func(*strings.Builder) error) error {
				var b strings.Builder
				if err := write(&b); err != nil {
					return err
				}
				ctx.Build.Workspace().Save(name, []byte(b.String()))
				return nil
			}
			if err := saveSeries("current.csv", func(b *strings.Builder) error { return res.Current.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			var bin bytes.Buffer
			if err := res.Current.WriteBinary(&bin); err != nil {
				done(err)
				return
			}
			ctx.Build.Workspace().Save("current.trace", bin.Bytes())
			if err := saveSeries("device-cpu.csv", func(b *strings.Builder) error { return res.DeviceCPU.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			if err := saveSeries("controller-cpu.csv", func(b *strings.Builder) error { return res.ControllerCPU.WriteCSV(b) }); err != nil {
				done(err)
				return
			}
			ctx.Logf("measured %s: %.2f mAh over %s (%d samples)",
				spec.Device, res.EnergyMAH, res.Duration, res.Current.Len())
			done(nil)
		})
		if err != nil {
			done(err)
			return
		}
		ctx.Logf("experiment scheduled: ~%s of device time", sess.Scripted())
	}
}

// SubmitExperiment creates, and for admins immediately approves and
// queues, a measurement job for spec. Experimenter-created jobs are left
// awaiting the §3.1 admin approval; the returned build is nil in that
// case. The spec is validated up front so a malformed submission fails
// with a typed error before entering the queue.
func (p *Platform) SubmitExperiment(user *accessserver.User, jobName string, spec ExperimentSpec) (*accessserver.Build, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cons := accessserver.Constraints{Node: spec.Node, Device: spec.Device}
	if _, err := p.Access.CreateJob(user, jobName, cons, p.MeasurementJob(spec)); err != nil {
		return nil, err
	}
	job, err := p.Access.Job(jobName)
	if err != nil {
		return nil, err
	}
	if !job.Approved() {
		return nil, nil // awaiting admin approval
	}
	b, err := p.Access.Submit(user, jobName)
	if err != nil {
		return nil, fmt.Errorf("core: submitting %s: %w", jobName, err)
	}
	return b, nil
}
