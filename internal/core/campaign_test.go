package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

// newCampaignRig builds a fresh platform with n vantage points, each
// hosting one device with the sample video installed — identical for
// identical seeds, the substrate for the determinism tests.
func newCampaignRig(t *testing.T, n int) (*Platform, *simclock.Virtual, []string, []string) {
	t.Helper()
	clk := simclock.NewVirtual()
	plat, err := NewPlatform(clk, 77)
	if err != nil {
		t.Fatal(err)
	}
	var nodes, serials []string
	for i := 0; i < n; i++ {
		name := "node" + string(rune('1'+i))
		ctl, err := controller.New(clk, controller.Config{Name: name, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := device.New(clk, device.Config{
			Seed:   uint64(200 + i),
			Serial: "DEV" + name,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AttachDevice(dev); err != nil {
			t.Fatal(err)
		}
		dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1024))
		dev.Install(video.NewPlayer("/sdcard/v.mp4"))
		if _, err := plat.Join(ctl, "198.51.100."+string(rune('1'+i))+":2222"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, name)
		serials = append(serials, dev.Serial())
	}
	return plat, clk, nodes, serials
}

func videoWorkload(dur time.Duration) func(automation.Driver) *automation.Script {
	return func(drv automation.Driver) *automation.Script {
		s := automation.NewScript("video")
		s.Add("launch", dur, func() error {
			_, err := drv.LaunchApp(video.PackageName)
			return err
		})
		return s
	}
}

// sixSpecs builds the acceptance-criterion batch: two vantage points ×
// three specs each, node-interleaved.
func sixSpecs(nodes, serials []string) []ExperimentSpec {
	var specs []ExperimentSpec
	for r := 0; r < 3; r++ {
		for n := 0; n < 2; n++ {
			specs = append(specs, ExperimentSpec{
				Node: nodes[n], Device: serials[n], SampleRate: 200,
				Workload: videoWorkload(time.Duration(20+5*r) * time.Second),
			})
		}
	}
	return specs
}

func TestCampaignConcurrentAcrossNodesSerializedPerDevice(t *testing.T) {
	plat, clk, nodes, serials := newCampaignRig(t, 2)
	specs := sixSpecs(nodes, serials)

	start := clk.Now()
	rec := &recorder{}
	runs, err := plat.RunCampaign(context.Background(), Campaign{Specs: specs}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("runs = %d", len(runs))
	}
	// One observer watches the whole campaign: events from interleaved
	// sessions are attributable through Node/Device.
	seenNode := map[string]bool{}
	rec.mu.Lock()
	for _, e := range rec.phases {
		if e.Node == "" || e.Device == "" {
			t.Fatalf("unattributed event %+v", e)
		}
		seenNode[e.Node] = true
	}
	rec.mu.Unlock()
	if !seenNode[nodes[0]] || !seenNode[nodes[1]] {
		t.Fatalf("events seen from %v, want both nodes", seenNode)
	}
	var sequential time.Duration
	for _, run := range runs {
		if run.Err != nil {
			t.Fatalf("run %d: %v", run.Index, run.Err)
		}
		if run.Result.EnergyMAH <= 0 {
			t.Fatalf("run %d measured no energy", run.Index)
		}
		if run.Started.IsZero() || !run.Finished.After(run.Started) {
			t.Fatalf("run %d has bogus interval [%v, %v]", run.Index, run.Started, run.Finished)
		}
		sequential += run.Result.Duration
	}

	// Serialized per device: intervals on the same node never overlap.
	overlap := func(a, b CampaignRun) bool {
		return a.Started.Before(b.Finished) && b.Started.Before(a.Finished)
	}
	crossNodeOverlap := false
	for i := range runs {
		for j := i + 1; j < len(runs); j++ {
			if runs[i].Spec.Node == runs[j].Spec.Node {
				if overlap(runs[i], runs[j]) {
					t.Fatalf("runs %d and %d overlap on %s", i, j, runs[i].Spec.Node)
				}
			} else if overlap(runs[i], runs[j]) {
				crossNodeOverlap = true
			}
		}
	}
	if !crossNodeOverlap {
		t.Fatal("no cross-node concurrency observed")
	}
	// The concurrency win is real: makespan well under the sequential sum.
	makespan := clk.Now().Sub(start)
	if makespan >= sequential {
		t.Fatalf("makespan %v not better than sequential %v", makespan, sequential)
	}
	// Monitors released everywhere.
	for _, name := range nodes {
		ctl, _ := plat.Controller(name)
		if ctl.Measuring() != "" {
			t.Fatalf("%s still measuring", name)
		}
	}
}

func TestCampaignDeterministicAndMatchesSequential(t *testing.T) {
	energies := func(runs []CampaignRun) []float64 {
		out := make([]float64, len(runs))
		for i, r := range runs {
			if r.Err != nil {
				t.Fatalf("run %d: %v", i, r.Err)
			}
			out[i] = r.Result.EnergyMAH
		}
		return out
	}

	// Same campaign on two fresh platforms: bit-identical outcomes.
	plat1, _, nodes, serials := newCampaignRig(t, 2)
	runs1, err := plat1.RunCampaign(context.Background(), Campaign{Specs: sixSpecs(nodes, serials)})
	if err != nil {
		t.Fatal(err)
	}
	plat2, _, nodes2, serials2 := newCampaignRig(t, 2)
	runs2, err := plat2.RunCampaign(context.Background(), Campaign{Specs: sixSpecs(nodes2, serials2)})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := energies(runs1), energies(runs2)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("campaign not seed-stable: run %d %v vs %v", i, e1[i], e2[i])
		}
	}

	// Concurrency does not change the science: each node's runs, executed
	// sequentially with blocking RunExperiment on a fresh platform, land
	// on the same timeline as inside the concurrent campaign — and so
	// produce bit-identical energies. (One fresh platform per node: a
	// single sequential sweep over both nodes would shift the second
	// node's runs to later instants and different noise realizations.)
	for n := 0; n < 2; n++ {
		platN, _, nodesN, serialsN := newCampaignRig(t, 2)
		specsN := sixSpecs(nodesN, serialsN)
		for i, spec := range specsN {
			if spec.Node != nodesN[n] {
				continue
			}
			res, err := platN.RunExperiment(context.Background(), spec)
			if err != nil {
				t.Fatalf("baseline run %d: %v", i, err)
			}
			if res.EnergyMAH != e1[i] {
				t.Fatalf("campaign run %d (%s) = %v mAh, sequential baseline = %v mAh",
					i, spec.Node, e1[i], res.EnergyMAH)
			}
		}
	}
}

func TestCampaignPerRunErrors(t *testing.T) {
	plat, _, nodes, serials := newCampaignRig(t, 2)
	specs := []ExperimentSpec{
		{Node: nodes[0], Device: serials[0], SampleRate: 200, Workload: videoWorkload(10 * time.Second)},
		// Unknown device: recorded per-run, dispatch fails synchronously.
		{Node: nodes[1], Device: "NOPE", SampleRate: 200, Workload: videoWorkload(10 * time.Second)},
		// Workload failure: the launched app is not installed.
		{Node: nodes[1], Device: serials[1], SampleRate: 200,
			Workload: func(drv automation.Driver) *automation.Script {
				s := automation.NewScript("bad")
				s.Add("boom", time.Second, func() error {
					_, err := drv.LaunchApp("com.not.installed")
					return err
				})
				return s
			}},
		{Node: nodes[1], Device: serials[1], SampleRate: 200, Workload: videoWorkload(10 * time.Second)},
	}
	runs, err := plat.RunCampaign(context.Background(), Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err != nil || runs[0].Result == nil {
		t.Fatalf("run 0: %v", runs[0].Err)
	}
	if !errors.Is(runs[1].Err, ErrUnknownDevice) {
		t.Fatalf("run 1 err = %v, want ErrUnknownDevice", runs[1].Err)
	}
	if runs[2].Err == nil {
		t.Fatal("run 2 should have failed its workload")
	}
	// Siblings on the same node keep running after a failure.
	if runs[3].Err != nil || runs[3].Result == nil {
		t.Fatalf("run 3: %v", runs[3].Err)
	}
}

func TestCampaignCancel(t *testing.T) {
	plat, clk, nodes, serials := newCampaignRig(t, 2)
	specs := sixSpecs(nodes, serials)
	cs, err := plat.StartCampaign(context.Background(), Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	clk.AfterFunc(5*time.Second, func() { cs.Cancel() })
	runs, err := cs.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	canceled := 0
	for _, run := range runs {
		if errors.Is(run.Err, ErrCanceled) {
			canceled++
		}
	}
	// At 5 s every first-wave run is mid-workload and every queued run is
	// still pending: all six cancel.
	if canceled != 6 {
		t.Fatalf("canceled = %d, want 6", canceled)
	}
	for _, name := range nodes {
		ctl, _ := plat.Controller(name)
		if ctl.Measuring() != "" {
			t.Fatalf("%s still measuring after cancel", name)
		}
		if ctl.VPN().Active() != nil {
			t.Fatalf("%s VPN still up after cancel", name)
		}
	}
	// Cancel is idempotent.
	cs.Cancel()
}

func TestCampaignMaxConcurrent(t *testing.T) {
	plat, _, nodes, serials := newCampaignRig(t, 2)
	specs := sixSpecs(nodes, serials)
	runs, err := plat.RunCampaign(context.Background(), Campaign{Specs: specs, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if runs[i].Err != nil {
			t.Fatalf("run %d: %v", i, runs[i].Err)
		}
		for j := i + 1; j < len(runs); j++ {
			if runs[i].Started.Before(runs[j].Finished) && runs[j].Started.Before(runs[i].Finished) {
				t.Fatalf("runs %d and %d overlap despite MaxConcurrent=1", i, j)
			}
		}
	}
}

func TestCampaignRealClock(t *testing.T) {
	clk := simclock.Real()
	plat, err := NewPlatform(clk, 9)
	if err != nil {
		t.Fatal(err)
	}
	var specs []ExperimentSpec
	for i := 0; i < 2; i++ {
		name := "node" + string(rune('1'+i))
		ctl, err := controller.New(clk, controller.Config{Name: name, Seed: uint64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := device.New(clk, device.Config{Seed: uint64(20 + i), Serial: "DEV" + name})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AttachDevice(dev); err != nil {
			t.Fatal(err)
		}
		if _, err := plat.Join(ctl, "198.51.100."+string(rune('1'+i))+":2222"); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, ExperimentSpec{
			Node: name, Device: dev.Serial(), SampleRate: 100,
			Padding:         50 * time.Millisecond,
			CPUSamplePeriod: 20 * time.Millisecond,
			Workload:        sleepWorkload(4, 50*time.Millisecond),
		})
	}
	runs, err := plat.RunCampaign(context.Background(), Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.Err != nil {
			t.Fatalf("run %d: %v", i, run.Err)
		}
		if run.Result.EnergyMAH <= 0 {
			t.Fatalf("run %d measured no energy", i)
		}
	}
}
