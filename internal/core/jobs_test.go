package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/trace"
)

func browserSpec(r *rig, name string, pages int) ExperimentSpec {
	prof, _ := browser.FindProfile(name)
	return ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200,
		Workload: func(drv automation.Driver) *automation.Script {
			return browser.BuildWorkload(drv, prof.Package, browser.WorkloadOptions{
				Pages:   browser.NewsSites()[:pages],
				Scrolls: 2,
			})
		},
	}
}

func installStudyBrowsers(t *testing.T, r *rig) {
	t.Helper()
	for _, prof := range browser.Profiles() {
		b := browser.New(prof, r.ctl.AP(), func() string { return r.ctl.Region() })
		if err := r.dev.Install(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubmitExperimentThroughQueue(t *testing.T) {
	r := newRig(t)
	installStudyBrowsers(t, r)
	admin, err := r.plat.Access.Users.Add("admin", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.plat.SubmitExperiment(admin, "brave-study", browserSpec(r, "Brave", 2))
	if err != nil {
		t.Fatal(err)
	}
	if b == nil {
		t.Fatal("admin submission should queue immediately")
	}
	// The build runs asynchronously on clock callbacks; drive time.
	deadline := r.clk.Now().Add(10 * time.Minute)
	for b.State() == accessserver.StateRunning && r.clk.Now().Before(deadline) {
		r.clk.Advance(time.Second)
	}
	if b.State() != accessserver.StateSuccess {
		t.Fatalf("state = %v err = %v log:\n%s", b.State(), b.Err(), b.Log())
	}
	// Artifacts: all three traces in the workspace.
	for _, name := range []string{"current.csv", "device-cpu.csv", "controller-cpu.csv"} {
		raw, err := b.Workspace().Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		series, err := trace.ReadCSV(strings.NewReader(string(raw)), "x", "u", r.clk.Now())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if series.Len() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	if !strings.Contains(b.Log(), "measured "+r.serial) {
		t.Fatalf("log:\n%s", b.Log())
	}
	// The binary artifact round-trips to the same trace as the CSV, in
	// fewer bytes.
	rawBin, err := b.Workspace().Load("current.trace")
	if err != nil {
		t.Fatal(err)
	}
	binSeries, err := trace.ReadBinary(bytes.NewReader(rawBin))
	if err != nil {
		t.Fatal(err)
	}
	rawCSV, err := b.Workspace().Load("current.csv")
	if err != nil {
		t.Fatal(err)
	}
	csvSeries, err := trace.ReadCSV(strings.NewReader(string(rawCSV)), "current", "mA", r.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if binSeries.Len() != csvSeries.Len() || binSeries.Name() != "current" || binSeries.Unit() != "mA" {
		t.Fatalf("binary artifact: len=%d name=%q unit=%q (csv len=%d)",
			binSeries.Len(), binSeries.Name(), binSeries.Unit(), csvSeries.Len())
	}
	if len(rawBin) >= len(rawCSV) {
		t.Fatalf("binary trace %d bytes not smaller than CSV %d", len(rawBin), len(rawCSV))
	}
}

func TestSubmitExperimentNeedsApproval(t *testing.T) {
	r := newRig(t)
	installStudyBrowsers(t, r)
	exp, err := r.plat.Access.Users.Add("bob", accessserver.RoleExperimenter)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.plat.SubmitExperiment(exp, "bob-study", browserSpec(r, "Chrome", 1))
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("experimenter job ran without admin approval")
	}
	// Admin approves, experimenter submits.
	admin, _ := r.plat.Access.Users.Add("alice", accessserver.RoleAdmin)
	if err := r.plat.Access.ApproveJob(admin, "bob-study"); err != nil {
		t.Fatal(err)
	}
	b2, err := r.plat.Access.Submit(exp, "bob-study")
	if err != nil {
		t.Fatal(err)
	}
	deadline := r.clk.Now().Add(10 * time.Minute)
	for b2.State() == accessserver.StateRunning && r.clk.Now().Before(deadline) {
		r.clk.Advance(time.Second)
	}
	if b2.State() != accessserver.StateSuccess {
		t.Fatalf("state = %v err = %v", b2.State(), b2.Err())
	}
}

func TestQueuedExperimentsSerializeOnDevice(t *testing.T) {
	r := newRig(t)
	installStudyBrowsers(t, r)
	admin, _ := r.plat.Access.Users.Add("admin", accessserver.RoleAdmin)

	b1, err := r.plat.SubmitExperiment(admin, "first", browserSpec(r, "Brave", 1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.plat.SubmitExperiment(admin, "second", browserSpec(r, "Chrome", 1))
	if err != nil {
		t.Fatal(err)
	}
	// The device lock keeps the second build queued while the first
	// owns the monitor — "one job at the time per device" (§3.1).
	if b1.State() != accessserver.StateRunning {
		t.Fatalf("b1 = %v", b1.State())
	}
	if b2.State() != accessserver.StateQueued {
		t.Fatalf("b2 = %v, want queued behind device lock", b2.State())
	}
	deadline := r.clk.Now().Add(30 * time.Minute)
	for b2.State() != accessserver.StateSuccess && r.clk.Now().Before(deadline) {
		r.clk.Advance(time.Second)
	}
	if b1.State() != accessserver.StateSuccess || b2.State() != accessserver.StateSuccess {
		t.Fatalf("states = %v, %v (b2 err %v)", b1.State(), b2.State(), b2.Err())
	}
}

func TestMeasurementJobFailurePropagates(t *testing.T) {
	r := newRig(t)
	// No browsers installed: the workload's launch step fails, the build
	// records the failure and the monitor is released.
	admin, _ := r.plat.Access.Users.Add("admin", accessserver.RoleAdmin)
	b, err := r.plat.SubmitExperiment(admin, "doomed", browserSpec(r, "Brave", 1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := r.clk.Now().Add(10 * time.Minute)
	for b.State() == accessserver.StateRunning && r.clk.Now().Before(deadline) {
		r.clk.Advance(time.Second)
	}
	if b.State() != accessserver.StateFailure {
		t.Fatalf("state = %v", b.State())
	}
	if r.ctl.Measuring() != "" {
		t.Fatal("monitor leaked after failed build")
	}
}
