package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/certs"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

type rig struct {
	clk    *simclock.Virtual
	plat   *Platform
	ctl    *controller.Controller
	dev    *device.Device
	serial string
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	plat, err := NewPlatform(clk, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(clk, device.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := plat.Join(ctl, "198.51.100.7:2222"); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, plat: plat, ctl: ctl, dev: dev, serial: dev.Serial()}
}

func TestJoinWorkflow(t *testing.T) {
	r := newRig(t)
	// DNS record present.
	addr, err := r.plat.Zone.Resolve("node1." + Domain)
	if err != nil || addr != "198.51.100.7:2222" {
		t.Fatalf("resolve = %q, %v", addr, err)
	}
	if got := r.plat.VantagePoints(); len(got) != 1 || got[0] != "node1."+Domain {
		t.Fatalf("vps = %v", got)
	}
	// Node registered at the access server.
	if nodes := r.plat.Access.Nodes.List(); len(nodes) != 1 || nodes[0] != "node1" {
		t.Fatalf("nodes = %v", nodes)
	}
	// Certificate deployed and valid for the node's FQDN.
	if r.ctl.CertPEM() == nil {
		t.Fatal("no certificate deployed")
	}
	err = certs.Verify(r.ctl.CertPEM(), r.plat.CA.CertPEM(), "node1."+Domain, r.clk.Now())
	if err != nil {
		t.Fatalf("deployed cert invalid: %v", err)
	}
}

func TestJoinDuplicate(t *testing.T) {
	r := newRig(t)
	ctl2, _ := controller.New(r.clk, controller.Config{Name: "node1", Seed: 2})
	if _, err := r.plat.Join(ctl2, "198.51.100.8:2222"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestCertRenewalJob(t *testing.T) {
	r := newRig(t)
	before, _ := r.plat.DeployedCert("node1")
	// Inside validity: nothing renews.
	if n := r.plat.RenewCertificates(); n != 0 {
		t.Fatalf("renewed %d fresh certs", n)
	}
	// Advance into the renewal window (90d validity - 30d window).
	r.clk.Advance(65 * 24 * time.Hour)
	if n := r.plat.RenewCertificates(); n != 1 {
		t.Fatalf("renewed %d, want 1", n)
	}
	after, _ := r.plat.DeployedCert("node1")
	if before.Leaf.SerialNumber.Cmp(after.Leaf.SerialNumber) == 0 {
		t.Fatal("certificate not rotated")
	}
	if err := certs.Verify(r.ctl.CertPEM(), r.plat.CA.CertPEM(), "node1."+Domain, r.clk.Now()); err != nil {
		t.Fatalf("renewed cert invalid: %v", err)
	}
}

func TestMaintenanceJobs(t *testing.T) {
	r := newRig(t)
	stop := r.plat.InstallMaintenanceJobs()
	defer stop()
	// Leave the monitor on with no measurement: the safety cron powers
	// it off.
	r.ctl.PowerMonitor()
	if !r.ctl.Socket().On() {
		t.Fatal("socket should be on")
	}
	r.clk.Advance(11 * time.Minute)
	if r.ctl.Socket().On() {
		t.Fatal("safety cron left the monitor on")
	}
	if r.plat.Access.CronRuns("monsoon-safety") == 0 {
		t.Fatal("safety cron never ran")
	}
}

func TestRunExperimentVideo(t *testing.T) {
	r := newRig(t)
	r.dev.Storage().Push("/sdcard/video.mp4", video.SampleMP4(1<<20))
	r.dev.Install(video.NewPlayer("/sdcard/video.mp4"))

	res, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 500,
		Workload: func(drv automation.Driver) *automation.Script {
			s := automation.NewScript("video")
			s.Add("launch", 30*time.Second, func() error {
				_, err := drv.LaunchApp(video.PackageName)
				return err
			})
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Current.Len() < 10_000 {
		t.Fatalf("current samples = %d", res.Current.Len())
	}
	med, _ := res.Current.CDF()
	// Video playback without mirroring: median around 160 mA (Fig. 2).
	if m := med.Median(); m < 135 || m > 190 {
		t.Fatalf("median current = %.1f mA, want ~160", m)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy measured")
	}
	if res.DeviceCPU.Len() == 0 || res.ControllerCPU.Len() == 0 {
		t.Fatal("missing CPU traces")
	}
	if res.MirrorUploadBytes != 0 {
		t.Fatal("mirror bytes without mirroring")
	}
	// The monitor is released for the next experimenter.
	if r.ctl.Measuring() != "" {
		t.Fatal("monitor still held")
	}
}

func TestRunExperimentMirroringRaisesCurrent(t *testing.T) {
	r := newRig(t)
	r.dev.Storage().Push("/sdcard/video.mp4", video.SampleMP4(1<<20))
	r.dev.Install(video.NewPlayer("/sdcard/video.mp4"))
	workload := func(drv automation.Driver) *automation.Script {
		s := automation.NewScript("video")
		s.Add("launch", 60*time.Second, func() error {
			_, err := drv.LaunchApp(video.PackageName)
			return err
		})
		return s
	}
	plain, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200, Workload: workload,
	})
	if err != nil {
		t.Fatal(err)
	}
	mirrored, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 200, Mirroring: true, Workload: workload,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := plain.Current.CDF()
	mm, _ := mirrored.Current.CDF()
	gap := mm.Median() - pm.Median()
	// Fig. 2: mirroring lifts the median from ~160 to ~220 mA.
	if gap < 30 || gap > 100 {
		t.Fatalf("mirroring gap = %.1f mA, want ~60", gap)
	}
	if mirrored.MirrorUploadBytes == 0 {
		t.Fatal("no mirror upload accounted")
	}
}

func TestRunExperimentRejectsUSB(t *testing.T) {
	r := newRig(t)
	_, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, Transport: TransportUSB,
		Workload: func(drv automation.Driver) *automation.Script {
			return automation.NewScript("x")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "USB") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunExperimentVPN(t *testing.T) {
	r := newRig(t)
	prof, _ := browser.FindProfile("Chrome")
	b := browser.New(prof, r.ctl.AP(), func() string { return r.ctl.Region() })
	r.dev.Install(b)

	res, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial, SampleRate: 100, VPNLocation: "Bunkyo",
		Workload: func(drv automation.Driver) *automation.Script {
			return browser.BuildWorkload(drv, prof.Package, browser.WorkloadOptions{
				Pages:   []string{"bbc.com", "cnn.com"},
				Scrolls: 2,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy")
	}
	// Tunnel torn down after the run.
	if r.ctl.VPN().Active() != nil {
		t.Fatal("VPN left connected")
	}
}

func TestRunExperimentWorkloadError(t *testing.T) {
	r := newRig(t)
	_, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: r.serial,
		Workload: func(drv automation.Driver) *automation.Script {
			s := automation.NewScript("bad")
			s.Add("boom", time.Second, func() error {
				_, err := drv.LaunchApp("com.not.installed")
				return err
			})
			return s
		},
	})
	if err == nil {
		t.Fatal("workload error swallowed")
	}
	// Monitor released even on failure.
	if r.ctl.Measuring() != "" {
		t.Fatal("monitor leaked after failure")
	}
}

func TestRunExperimentValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.plat.RunExperiment(context.Background(), ExperimentSpec{Node: "node1", Device: r.serial}); err == nil {
		t.Fatal("missing workload accepted")
	}
	spec := ExperimentSpec{
		Node: "nowhere", Device: r.serial,
		Workload: func(drv automation.Driver) *automation.Script { return automation.NewScript("x") },
	}
	if _, err := r.plat.RunExperiment(context.Background(), spec); err == nil {
		t.Fatal("unknown node accepted")
	}
	spec.Node, spec.Device = "node1", "nodevice"
	if _, err := r.plat.RunExperiment(context.Background(), spec); err == nil {
		t.Fatal("unknown device accepted")
	}
}
