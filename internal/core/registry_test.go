package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

// compileRig is a one-node platform for compile tests.
func compileRig(t *testing.T) (*Platform, string) {
	t.Helper()
	clock := simclock.NewVirtual()
	p, err := NewPlatform(clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(clock, controller.Config{Name: "node1", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(clock, device.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Join(ctl, "198.51.100.7:2222"); err != nil {
		t.Fatal(err)
	}
	return p, dev.Serial()
}

func TestCompileExperimentErrors(t *testing.T) {
	p, serial := compileRig(t)
	base := func() api.ExperimentSpec {
		return api.ExperimentSpec{
			Node: "node1", Device: serial,
			Workload: api.WorkloadSpec{Name: "idle"},
		}
	}
	cases := []struct {
		name     string
		mutate   func(*api.ExperimentSpec)
		sentinel error
	}{
		{"empty node", func(s *api.ExperimentSpec) { s.Node = "" }, accessserver.ErrInvalid},
		{"usb transport", func(s *api.ExperimentSpec) { s.Transport = api.TransportUSB }, accessserver.ErrInvalid},
		{"unknown workload", func(s *api.ExperimentSpec) { s.Workload.Name = "defrag" }, accessserver.ErrNotFound},
		{"unknown node", func(s *api.ExperimentSpec) { s.Node = "mars" }, accessserver.ErrNotFound},
		{"unknown device", func(s *api.ExperimentSpec) { s.Device = "nope" }, accessserver.ErrNotFound},
		{"unknown browser", func(s *api.ExperimentSpec) {
			s.Workload = api.WorkloadSpec{Name: "browser", Params: api.Params{"browser": "Netscape"}}
		}, accessserver.ErrInvalid},
		{"pages out of range", func(s *api.ExperimentSpec) {
			s.Workload = api.WorkloadSpec{Name: "browser", Params: api.Params{"pages": 0}}
		}, accessserver.ErrInvalid},
		{"negative idle duration", func(s *api.ExperimentSpec) {
			s.Workload.Params = api.Params{"duration_ms": -5}
		}, accessserver.ErrInvalid},
	}
	for _, c := range cases {
		spec := base()
		c.mutate(&spec)
		_, err := p.CompileExperiment(spec)
		if !errors.Is(err, c.sentinel) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.sentinel)
		}
	}
	if _, err := p.CompileExperiment(base()); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCompileExperimentBindsParams(t *testing.T) {
	p, serial := compileRig(t)
	spec, err := p.CompileExperiment(api.ExperimentSpec{
		Node: "node1", Device: serial,
		Transport: api.TransportBluetooth,
		Monitor: api.MonitorSpec{
			SampleRateHz: 250, VoltageV: 4.0,
			CPUSamplePeriodMS: 2000, PaddingMS: 3000,
		},
		Mirroring:   true,
		VPNLocation: "Bunkyo",
		Workload: api.WorkloadSpec{
			Name:   "idle",
			Params: api.Params{"duration_ms": 42000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.SampleRate != 250 || spec.VoltageV != 4.0 || !spec.Mirroring ||
		spec.VPNLocation != "Bunkyo" || spec.Transport != TransportBluetooth ||
		spec.CPUSamplePeriod != 2*time.Second || spec.Padding != 3*time.Second {
		t.Fatalf("compiled spec = %+v", spec)
	}
	drv := automation.NewADBDriver(nil, "d")
	script := spec.Workload(drv)
	if got := script.TotalWait(); got != 42*time.Second {
		t.Fatalf("idle script wait = %v, want 42s", got)
	}
}

// TestSpecAndClosurePathsAgree: the declarative route and the classic
// closure route produce identical measurements for the same workload.
func TestSpecAndClosurePathsAgree(t *testing.T) {
	p1, serial1 := compileRig(t)
	res1, err := p1.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node1", Device: serial1, SampleRate: 1000,
		Workload: func(drv automation.Driver) *automation.Script {
			s := automation.NewScript("idle")
			s.Add("idle", 10*time.Second, nil)
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	p2, serial2 := compileRig(t)
	sess, err := p2.StartExperimentSpec(context.Background(), api.ExperimentSpec{
		Node: "node1", Device: serial2,
		Monitor:  api.MonitorSpec{SampleRateHz: 1000},
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 10000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sess.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1.EnergyMAH != res2.EnergyMAH || res1.Current.Len() != res2.Current.Len() {
		t.Fatalf("closure run (%v mAh, %d) != spec run (%v mAh, %d)",
			res1.EnergyMAH, res1.Current.Len(), res2.EnergyMAH, res2.Current.Len())
	}
}

func TestWorkloadRegistryCustom(t *testing.T) {
	p, serial := compileRig(t)
	p.Workloads().Register("blink", func(params api.Params) (func(automation.Driver) *automation.Script, error) {
		return func(automation.Driver) *automation.Script {
			s := automation.NewScript("blink")
			s.Add("blink", time.Second, nil)
			return s
		}, nil
	})
	names := p.Workloads().Names()
	found := false
	for _, n := range names {
		found = found || n == "blink"
	}
	if !found {
		t.Fatalf("custom workload missing from %v", names)
	}
	if _, err := p.CompileExperiment(api.ExperimentSpec{
		Node: "node1", Device: serial,
		Workload: api.WorkloadSpec{Name: "blink"},
	}); err != nil {
		t.Fatal(err)
	}
}
