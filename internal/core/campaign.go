package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"batterylab/internal/simclock"
)

// Campaign is a batch of experiments run under one scheduling policy —
// the first-class abstraction for large measurement sweeps (many
// devices × many KPIs) that a shared platform serves, instead of a
// for-loop around a blocking call.
type Campaign struct {
	// Specs are the runs, dispatched FIFO per vantage point.
	Specs []ExperimentSpec
	// MaxConcurrent caps how many experiments run at once across the
	// whole campaign (0 = no cap beyond the hardware bound). Runs on the
	// same vantage point are always serialized: one Monsoon powers one
	// device at a time, so a node's monitor is exclusive.
	MaxConcurrent int
	// Budget bounds how much simulated time Wait may drive before giving
	// up on a stuck campaign. Zero selects a default that adapts to the
	// dispatched runs (48 h, extended past any run's scripted window); an
	// explicit Budget is a hard bound.
	Budget time.Duration
}

// CampaignRun is one spec's outcome within a campaign.
type CampaignRun struct {
	// Index is the spec's position in Campaign.Specs.
	Index int
	// Spec is the run as submitted.
	Spec ExperimentSpec
	// Result is the measurement (nil when Err is set).
	Result *Result
	// Err is the per-run failure: validation, setup, workload or
	// cancellation. One run failing never aborts its siblings.
	Err error
	// Started and Finished are platform-clock instants (Started is zero
	// when the run failed before dispatch or was canceled while queued).
	Started  time.Time
	Finished time.Time
}

// CampaignSession is a handle to an in-flight campaign.
type CampaignSession struct {
	platform  *Platform
	clock     simclock.Clock
	campaign  Campaign
	observers []Observer
	ctx       context.Context

	done chan struct{}

	mu            sync.Mutex
	pending       []int
	busy          map[string]bool // vantage point -> measuring
	running       int
	sessions      map[int]*Session
	runs          []CampaignRun
	outstanding   int
	canceled      bool
	cancelCause   error
	deadline      time.Time
	defaultBudget bool
}

// RunCampaign submits the campaign and blocks until every run has
// finished (or the campaign is canceled), returning the aggregated
// per-run outcomes in spec order. Under the virtual clock the scheduler
// is deterministic: the same seed and specs produce identical results,
// and runs on distinct vantage points execute concurrently in simulated
// time while each node's runs stay serialized.
func (p *Platform) RunCampaign(ctx context.Context, c Campaign, obs ...Observer) ([]CampaignRun, error) {
	cs, err := p.StartCampaign(ctx, c, obs...)
	if err != nil {
		return nil, err
	}
	return cs.Wait(ctx)
}

// StartCampaign validates the batch shape and begins dispatching,
// returning a handle immediately. Individual spec failures (unknown
// node, bad workload, …) are recorded per run, not returned here.
func (p *Platform) StartCampaign(ctx context.Context, c Campaign, obs ...Observer) (*CampaignSession, error) {
	if len(c.Specs) == 0 {
		return nil, errors.New("core: campaign has no specs")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defaultBudget := c.Budget == 0
	if defaultBudget {
		c.Budget = 48 * time.Hour
	}
	cs := &CampaignSession{
		platform:      p,
		clock:         p.clock,
		campaign:      c,
		observers:     obs,
		ctx:           ctx,
		done:          make(chan struct{}),
		busy:          make(map[string]bool),
		sessions:      make(map[int]*Session),
		runs:          make([]CampaignRun, len(c.Specs)),
		outstanding:   len(c.Specs),
		deadline:      p.clock.Now().Add(c.Budget),
		defaultBudget: defaultBudget,
	}
	for i, spec := range c.Specs {
		cs.pending = append(cs.pending, i)
		cs.runs[i] = CampaignRun{Index: i, Spec: spec}
	}
	cs.schedule()
	// Real clock only, for the same reason as Platform.start: under a
	// Virtual clock Wait's drive loop observes ctx itself, and an async
	// watcher would race the driving goroutine.
	if _, virtual := p.clock.(*simclock.Virtual); !virtual && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cs.cancelWith(context.Cause(ctx))
			case <-cs.done:
			}
		}()
	}
	return cs, nil
}

// Done returns a channel closed when every run has finished.
func (cs *CampaignSession) Done() <-chan struct{} { return cs.done }

// Runs returns a snapshot of the per-run outcomes in spec order.
func (cs *CampaignSession) Runs() []CampaignRun {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]CampaignRun{}, cs.runs...)
}

// Cancel stops the campaign: queued runs are failed with ErrCanceled and
// in-flight sessions are canceled (their teardown completes before the
// campaign's Done closes). Idempotent.
func (cs *CampaignSession) Cancel() { cs.cancelWith(nil) }

func (cs *CampaignSession) cancelWith(cause error) {
	cs.mu.Lock()
	if cs.canceled {
		cs.mu.Unlock()
		return
	}
	cs.canceled = true
	cs.cancelCause = cause
	pending := cs.pending
	cs.pending = nil
	sessions := make([]*Session, 0, len(cs.sessions))
	for _, s := range cs.sessions {
		sessions = append(sessions, s)
	}
	cs.mu.Unlock()

	err := ErrCanceled
	if cause != nil {
		err = fmt.Errorf("%w: %v", ErrCanceled, cause)
	}
	for _, i := range pending {
		cs.record(i, nil, err, false)
	}
	for _, s := range sessions {
		s.Cancel()
	}
}

// Wait blocks until the campaign completes and returns the aggregated
// outcomes. Per-run failures live in the returned runs; the error return
// is campaign-level only (context cancellation or a blown time budget).
func (cs *CampaignSession) Wait(ctx context.Context) ([]CampaignRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	v, ok := cs.clock.(*simclock.Virtual)
	if !ok {
		select {
		case <-cs.done:
			return cs.Runs(), nil
		case <-ctx.Done():
			cs.cancelWith(context.Cause(ctx))
			<-cs.done
			return cs.Runs(), ctx.Err()
		}
	}
	err := cs.platform.drive(ctx, v, cs.done, cs.deadlineAt)
	if err != nil {
		if ctx.Err() != nil {
			cs.cancelWith(context.Cause(ctx))
			<-cs.done
			return cs.Runs(), ctx.Err()
		}
		// Budget blown or clock stalled: cancel so in-flight sessions
		// release their hardware, queued runs get an outcome and Done
		// closes (also unblocking the ctx-watcher goroutine).
		cs.cancelWith(err)
		<-cs.done
		return cs.Runs(), err
	}
	return cs.Runs(), nil
}

func (cs *CampaignSession) deadlineAt() time.Time {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.deadline
}

// schedule dispatches every runnable spec: lowest pending index first,
// skipping specs whose vantage point is measuring, stopping at the
// concurrency cap. It is called at submission and from every run's
// completion, so the campaign is fully event-driven — under the virtual
// clock all dispatch decisions happen at deterministic instants.
func (cs *CampaignSession) schedule() {
	for {
		cs.mu.Lock()
		if cs.canceled {
			cs.mu.Unlock()
			return
		}
		pick := -1
		for qi, i := range cs.pending {
			if cs.campaign.MaxConcurrent > 0 && cs.running >= cs.campaign.MaxConcurrent {
				break
			}
			node := cs.campaign.Specs[i].Node
			if cs.busy[node] {
				continue
			}
			pick = i
			cs.pending = append(cs.pending[:qi], cs.pending[qi+1:]...)
			cs.busy[node] = true
			cs.running++
			break
		}
		cs.mu.Unlock()
		if pick < 0 {
			return
		}

		i := pick
		spec := cs.campaign.Specs[i]
		started := cs.clock.Now()
		sess, err := cs.platform.start(cs.ctx, spec, cs.observers, func(res *Result, err error) {
			cs.record(i, res, err, true)
			cs.schedule()
		})
		if err != nil {
			// A dispatch that lost the race against context cancellation
			// records the same canceled shape as queued runs do.
			if cs.ctx.Err() != nil {
				err = fmt.Errorf("%w: %v", ErrCanceled, context.Cause(cs.ctx))
			}
			cs.record(i, nil, err, true)
			continue
		}
		cs.mu.Lock()
		cs.sessions[i] = sess
		cs.runs[i].Started = started
		// Only the default budget adapts to long runs; an explicit
		// Budget is a hard bound the user asked for.
		if dl := started.Add(sess.Scripted()*2 + time.Minute); cs.defaultBudget && dl.After(cs.deadline) {
			cs.deadline = dl
		}
		canceled := cs.canceled
		cs.mu.Unlock()
		if canceled {
			// Cancel raced the dispatch; fold this session in.
			sess.Cancel()
		}
	}
}

// record stores one run's outcome; dispatched runs also release their
// vantage point. The campaign completes when the last outcome lands.
func (cs *CampaignSession) record(i int, res *Result, err error, dispatched bool) {
	cs.mu.Lock()
	if dispatched {
		cs.busy[cs.campaign.Specs[i].Node] = false
		cs.running--
		delete(cs.sessions, i)
	}
	cs.runs[i].Result = res
	cs.runs[i].Err = err
	cs.runs[i].Finished = cs.clock.Now()
	cs.outstanding--
	doneNow := cs.outstanding == 0
	cs.mu.Unlock()
	if doneNow {
		close(cs.done)
	}
}
