package core

import (
	"context"
	"testing"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
)

// Multi-vantage-point tests: the platform's whole point is federating
// testbeds "as new members join over time and from different locations".

func newMultiVP(t *testing.T, n int) (*Platform, *simclock.Virtual, []*controller.Controller) {
	t.Helper()
	clk := simclock.NewVirtual()
	plat, err := NewPlatform(clk, 77)
	if err != nil {
		t.Fatal(err)
	}
	var ctls []*controller.Controller
	for i := 0; i < n; i++ {
		name := "node" + string(rune('1'+i))
		ctl, err := controller.New(clk, controller.Config{Name: name, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := device.New(clk, device.Config{
			Seed:   uint64(200 + i),
			Serial: "DEV" + name,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AttachDevice(dev); err != nil {
			t.Fatal(err)
		}
		if _, err := plat.Join(ctl, "198.51.100."+string(rune('1'+i))+":2222"); err != nil {
			t.Fatal(err)
		}
		ctls = append(ctls, ctl)
	}
	return plat, clk, ctls
}

func TestMultiVPJoin(t *testing.T) {
	plat, _, _ := newMultiVP(t, 3)
	vps := plat.VantagePoints()
	if len(vps) != 3 {
		t.Fatalf("vps = %v", vps)
	}
	for _, name := range []string{"node1", "node2", "node3"} {
		if _, err := plat.Controller(name); err != nil {
			t.Fatal(err)
		}
		cert, err := plat.DeployedCert(name)
		if err != nil || cert == nil {
			t.Fatalf("cert for %s: %v", name, err)
		}
	}
}

func TestMultiVPIndependentExperiments(t *testing.T) {
	plat, _, ctls := newMultiVP(t, 2)
	// Push media to both devices and measure them one after the other:
	// each vantage point has its own monitor, so runs don't interfere.
	var energies []float64
	for i, ctl := range ctls {
		serial := ctl.ListDevices()[0]
		dev, _ := ctl.Device(serial)
		dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1024))
		dev.Install(video.NewPlayer("/sdcard/v.mp4"))
		res, err := plat.RunExperiment(context.Background(), ExperimentSpec{
			Node: ctl.Name(), Device: serial, SampleRate: 200,
			Workload: func(drv automation.Driver) *automation.Script {
				s := automation.NewScript("video")
				s.Add("launch", 20*time.Second, func() error {
					_, err := drv.LaunchApp(video.PackageName)
					return err
				})
				return s
			},
		})
		if err != nil {
			t.Fatalf("vp %d: %v", i, err)
		}
		energies = append(energies, res.EnergyMAH)
	}
	for i, e := range energies {
		if e <= 0 {
			t.Fatalf("vp %d measured no energy", i)
		}
	}
}

func TestMultiVPRenewalCoversAll(t *testing.T) {
	plat, clk, _ := newMultiVP(t, 3)
	clk.Advance(65 * 24 * time.Hour)
	if n := plat.RenewCertificates(); n != 3 {
		t.Fatalf("renewed %d, want 3", n)
	}
}

func TestMultiVPDistinctRegions(t *testing.T) {
	plat, _, ctls := newMultiVP(t, 2)
	// Tunnel only the second vantage point: regions diverge.
	ctls[1].VPN().Connect("Sao Paulo")
	if ctls[0].Region() == ctls[1].Region() {
		t.Fatal("regions should diverge")
	}
	if ctls[1].Region() != "BR" {
		t.Fatalf("region = %s", ctls[1].Region())
	}
	_ = plat
}
