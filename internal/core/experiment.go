package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/simclock"
	"batterylab/internal/trace"
)

// Transport selects the measurement-time ADB channel. The zero value is
// WiFi — the measurement-safe default the paper uses. USB is listed only
// to be rejected with an explanatory error.
type Transport int

// Transports.
const (
	TransportWiFi Transport = iota
	TransportBluetooth
	TransportUSB
)

// Typed sentinel errors for spec validation and lookup failures. Callers
// branch with errors.Is rather than matching message strings.
var (
	// ErrUnknownNode reports a vantage point that is not joined to the
	// platform (or an empty Node field).
	ErrUnknownNode = errors.New("core: unknown vantage point")
	// ErrUnknownDevice reports a device serial the target vantage point
	// does not host (or an empty Device field).
	ErrUnknownDevice = errors.New("core: unknown device")
	// ErrUSBTransport rejects measuring over USB: the port's
	// micro-controller activation current corrupts the measurement
	// (§3.3). Use WiFi or Bluetooth.
	ErrUSBTransport = errors.New("core: USB transport corrupts measurements; use WiFi or Bluetooth")
	// ErrNoWorkload reports a spec without a workload builder.
	ErrNoWorkload = errors.New("core: experiment needs a workload")
	// ErrCanceled reports a run ended by Session.Cancel, Campaign
	// cancellation or context cancellation. Teardown still completed.
	ErrCanceled = errors.New("core: experiment canceled")
	// ErrNodeLost reports a remote run that failed because its vantage
	// point died (and the scheduler's failover budget was spent). The
	// client maps the v1 node_lost status flag onto it.
	ErrNodeLost = errors.New("core: vantage point lost")
)

// ExperimentSpec describes one battery measurement run — the programmatic
// equivalent of a Jenkins job built from the Table 1 API.
type ExperimentSpec struct {
	// Node and Device select the vantage point and test device.
	Node   string
	Device string
	// SampleRate is the monitor's sampling rate in Hz (0 = hardware
	// maximum, 5 kHz). Long sweeps use lower rates to bound memory.
	SampleRate int
	// VoltageV is the monitor output voltage (0 = the device battery's
	// nominal voltage).
	VoltageV float64
	// Mirroring activates the device-mirroring pipeline for the run —
	// the knob whose cost §4.1/4.2 quantify.
	Mirroring bool
	// VPNLocation tunnels the vantage point's traffic through a
	// ProtonVPN exit ("" = direct) — the §4.3 knob.
	VPNLocation string
	// Transport is the ADB channel used during the measurement.
	// Defaults to WiFi, the paper's measurement-safe choice.
	Transport Transport
	// Workload builds the automation script given the run's driver.
	Workload func(drv automation.Driver) *automation.Script
	// CPUSamplePeriod controls the device/controller CPU monitors
	// (default 1 s).
	CPUSamplePeriod time.Duration
	// Padding holds the monitor running after the script completes
	// (settle tail; default 1 s).
	Padding time.Duration
}

// Validate checks the spec's self-contained invariants and returns a
// typed sentinel error (wrapped with detail) on the first violation.
// Node/device existence is checked against the platform at start time,
// with the same sentinels.
func (s *ExperimentSpec) Validate() error {
	if s.Node == "" {
		return fmt.Errorf("%w: spec.Node is empty", ErrUnknownNode)
	}
	if s.Device == "" {
		return fmt.Errorf("%w: spec.Device is empty", ErrUnknownDevice)
	}
	if s.Workload == nil {
		return ErrNoWorkload
	}
	switch s.Transport {
	case TransportWiFi, TransportBluetooth:
	case TransportUSB:
		return ErrUSBTransport
	default:
		return fmt.Errorf("core: unknown transport %d", s.Transport)
	}
	if s.SampleRate < 0 {
		return fmt.Errorf("core: negative sample rate %d", s.SampleRate)
	}
	if s.VoltageV < 0 {
		return fmt.Errorf("core: negative voltage %v", s.VoltageV)
	}
	if s.CPUSamplePeriod < 0 || s.Padding < 0 {
		return errors.New("core: negative durations in spec")
	}
	return nil
}

// withDefaults fills the zero-value knobs.
func (s ExperimentSpec) withDefaults(nominalVoltage float64) ExperimentSpec {
	if s.CPUSamplePeriod == 0 {
		s.CPUSamplePeriod = time.Second
	}
	if s.Padding == 0 {
		s.Padding = time.Second
	}
	if s.VoltageV == 0 {
		s.VoltageV = nominalVoltage
	}
	return s
}

// Result carries everything a run measured.
type Result struct {
	// Current is the power monitor's trace (mA).
	Current *trace.Series
	// DeviceCPU and ControllerCPU are 1 Hz utilization traces (%).
	DeviceCPU     *trace.Series
	ControllerCPU *trace.Series
	// EnergyMAH is the discharge over the run.
	EnergyMAH float64
	// MirrorUploadBytes is the device→controller stream volume.
	MirrorUploadBytes int64
	// Duration is the measured window.
	Duration time.Duration
}

// RunExperiment executes a measurement end to end on a joined vantage
// point and blocks until it completes, fails, or ctx is canceled
// (cancellation tears the VPN, mirroring session and monitor down in
// reverse setup order before returning). On a Virtual clock it drives
// simulated time itself, so a 7-minute workload returns in milliseconds;
// on the Real clock it blocks for the workload's actual duration.
func (p *Platform) RunExperiment(ctx context.Context, spec ExperimentSpec, obs ...Observer) (*Result, error) {
	sess, err := p.StartExperiment(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return sess.Wait(ctx)
}

// StartExperiment sets a measurement up and schedules its workload,
// returning a Session handle immediately. The session exposes Wait,
// Cancel, the current Phase and the scripted duration; observers receive
// phase transitions and live current samples. Setup errors that can be
// detected synchronously (validation, unknown node/device, VPN or
// transport failures) are returned here; later failures surface through
// Wait. Cancelling ctx cancels the run.
func (p *Platform) StartExperiment(ctx context.Context, spec ExperimentSpec, obs ...Observer) (*Session, error) {
	return p.start(ctx, spec, obs, nil)
}

// StartExperimentFunc is the v1 callback form kept as a thin shim: done
// is invoked exactly once with the run's outcome, and the scripted
// duration is returned immediately.
//
// Deprecated: use StartExperiment and the returned Session.
func (p *Platform) StartExperimentFunc(spec ExperimentSpec, done func(*Result, error)) (time.Duration, error) {
	sess, err := p.start(context.Background(), spec, nil, done)
	if err != nil {
		return 0, err
	}
	return sess.Scripted(), nil
}

// start is the shared setup path behind StartExperiment, the campaign
// scheduler and the access-server jobs. onDone, when non-nil, is invoked
// exactly once from the teardown path with the run's outcome.
func (p *Platform) start(ctx context.Context, spec ExperimentSpec, obs []Observer, onDone func(*Result, error)) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctl, err := p.Controller(spec.Node)
	if err != nil {
		return nil, err
	}
	dev, err := ctl.Device(spec.Device)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownDevice, err)
	}
	spec = spec.withDefaults(dev.Battery().NominalVoltage())

	s := &Session{
		platform:  p,
		clock:     p.clock,
		spec:      spec,
		ctl:       ctl,
		dev:       dev,
		observers: obs,
		onDone:    onDone,
		done:      make(chan struct{}),
	}
	if len(obs) > 0 {
		// Live samples are fanned out on a dedicated delivery goroutine
		// so observer latency never stalls the capture path.
		s.mux = newObsMux(obs)
	}

	// 1. Network location (§4.3).
	if spec.VPNLocation != "" {
		if _, err := ctl.VPN().Connect(spec.VPNLocation); err != nil {
			if s.mux != nil {
				s.mux.stop() // release the delivery goroutine
			}
			return nil, err
		}
		s.vpnConnected = true
		s.setPhase(PhaseVPNUp, "")
	}
	fail := func(err error) (*Session, error) {
		s.teardownSetup()
		// Observers that saw this run enter phases get the terminal
		// event too, with the setup failure attached.
		s.mu.Lock()
		s.phase = PhaseDone
		s.mu.Unlock()
		if s.mux != nil {
			s.mux.stop() // no samples flowed; release the delivery goroutine
		}
		s.notifyPhase(PhaseChange{
			Node: spec.Node, Device: spec.Device,
			Phase: PhaseDone, At: p.clock.Now(), Err: err,
		})
		return nil, err
	}

	// 2. Automation channel (§3.3): arm the measurement-safe transport
	// while USB is still up.
	if err := s.armTransport(); err != nil {
		return fail(err)
	}
	s.setPhase(PhaseTransportArmed, "")

	// 3. Mirroring (§3.2), before the monitor so its cost is measured.
	if spec.Mirroring {
		sess, err := ctl.MirrorSession(spec.Device)
		if err != nil {
			return fail(err)
		}
		if err := sess.Start(0); err != nil {
			return fail(err)
		}
		s.mirrorActive = true
		s.setPhase(PhaseMirrorOn, "")
	}

	// 4. Build the workload script up front so the scripted duration is
	// known before the monitor arms.
	drv := automation.NewADBDriver(ctl.ADB(), spec.Device)
	script := spec.Workload(drv)
	s.script = s.instrument(script)
	s.scripted = script.TotalWait() + spec.Padding

	// 5. Power and program the monitor, then arm it event-driven: the
	// relay flips now, sampling starts at the settle instant without
	// advancing the shared clock (concurrent campaigns keep their own
	// timelines).
	if !ctl.Monsoon().Powered() {
		ctl.PowerMonitor()
	}
	if err := ctl.SetVoltage(spec.VoltageV); err != nil {
		return fail(err)
	}
	abortArm, err := ctl.ArmMonitor(spec.Device, spec.SampleRate, s.armed)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	s.abortArm = abortArm
	s.mu.Unlock()
	// Watch ctx on the real clock only: there timers fire on their own
	// goroutines, so an async cancel is both needed and safe. Under a
	// Virtual clock all progress happens inside Wait's drive loop, which
	// checks ctx itself — an async watcher would run teardown
	// concurrently with timer callbacks and break the single-driver
	// determinism model.
	if _, virtual := p.clock.(*simclock.Virtual); !virtual && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.cancelWith(context.Cause(ctx))
			case <-s.done:
			}
		}()
	}
	return s, nil
}
