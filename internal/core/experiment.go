package core

import (
	"errors"
	"fmt"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/automation"
	"batterylab/internal/simclock"
	"batterylab/internal/trace"
)

// Transport selects the measurement-time ADB channel. The zero value is
// WiFi — the measurement-safe default the paper uses. USB is listed only
// to be rejected with an explanatory error.
type Transport int

// Transports.
const (
	TransportWiFi Transport = iota
	TransportBluetooth
	TransportUSB
)

// ExperimentSpec describes one battery measurement run — the programmatic
// equivalent of a Jenkins job built from the Table 1 API.
type ExperimentSpec struct {
	// Node and Device select the vantage point and test device.
	Node   string
	Device string
	// SampleRate is the monitor's sampling rate in Hz (0 = hardware
	// maximum, 5 kHz). Long sweeps use lower rates to bound memory.
	SampleRate int
	// VoltageV is the monitor output voltage (0 = the device battery's
	// nominal voltage).
	VoltageV float64
	// Mirroring activates the device-mirroring pipeline for the run —
	// the knob whose cost §4.1/4.2 quantify.
	Mirroring bool
	// VPNLocation tunnels the vantage point's traffic through a
	// ProtonVPN exit ("" = direct) — the §4.3 knob.
	VPNLocation string
	// Transport is the ADB channel used during the measurement.
	// Defaults to WiFi, the paper's measurement-safe choice.
	Transport Transport
	// Workload builds the automation script given the run's driver.
	Workload func(drv automation.Driver) *automation.Script
	// CPUSamplePeriod controls the device/controller CPU monitors
	// (default 1 s).
	CPUSamplePeriod time.Duration
	// Padding holds the monitor running after the script completes
	// (settle tail; default 1 s).
	Padding time.Duration
}

// Result carries everything a run measured.
type Result struct {
	// Current is the power monitor's trace (mA).
	Current *trace.Series
	// DeviceCPU and ControllerCPU are 1 Hz utilization traces (%).
	DeviceCPU     *trace.Series
	ControllerCPU *trace.Series
	// EnergyMAH is the discharge over the run.
	EnergyMAH float64
	// MirrorUploadBytes is the device→controller stream volume.
	MirrorUploadBytes int64
	// Duration is the measured window.
	Duration time.Duration
}

// RunExperiment executes a measurement end to end on a joined vantage
// point. On a Virtual clock it drives simulated time itself, so a
// 7-minute workload returns in milliseconds; on the Real clock it blocks
// for the workload's actual duration.
func (p *Platform) RunExperiment(spec ExperimentSpec) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	scripted, err := p.StartExperiment(spec, func(res *Result, err error) {
		ch <- outcome{res, err}
	})
	if err != nil {
		return nil, err
	}
	if v, ok := p.clock.(*simclock.Virtual); ok {
		// Drive simulated time until the experiment completes, bounded
		// by a generous budget so a stuck workload cannot hang us.
		deadline := v.Now().Add(scripted*2 + time.Minute)
		for {
			select {
			case o := <-ch:
				return o.res, o.err
			default:
			}
			if !v.Now().Before(deadline) {
				return nil, fmt.Errorf("core: workload did not finish within %v", scripted*2+time.Minute)
			}
			v.Advance(100 * time.Millisecond)
		}
	}
	o := <-ch
	return o.res, o.err
}

// StartExperiment sets a measurement up and schedules its workload,
// returning immediately with the scripted duration. When the run
// completes (or fails), done receives the result; it is invoked exactly
// once, from a clock callback. This is the form access-server jobs use:
// the build's RunFunc must not block or drive the clock itself.
func (p *Platform) StartExperiment(spec ExperimentSpec, done func(*Result, error)) (time.Duration, error) {
	if spec.Workload == nil {
		return 0, errors.New("core: experiment needs a workload")
	}
	if done == nil {
		done = func(*Result, error) {}
	}
	ctl, err := p.Controller(spec.Node)
	if err != nil {
		return 0, err
	}
	dev, err := ctl.Device(spec.Device)
	if err != nil {
		return 0, err
	}
	if spec.CPUSamplePeriod == 0 {
		spec.CPUSamplePeriod = time.Second
	}
	if spec.Padding == 0 {
		spec.Padding = time.Second
	}
	if spec.VoltageV == 0 {
		spec.VoltageV = dev.Battery().NominalVoltage()
	}

	// 1. Network location (§4.3).
	vpnConnected := false
	if spec.VPNLocation != "" {
		if _, err := ctl.VPN().Connect(spec.VPNLocation); err != nil {
			return 0, err
		}
		vpnConnected = true
	}
	teardownNetwork := func() {
		if vpnConnected {
			ctl.VPN().Disconnect()
		}
	}

	// 2. Automation channel (§3.3): arm the measurement-safe transport
	// while USB is still up.
	switch spec.Transport {
	case TransportUSB:
		teardownNetwork()
		return 0, errors.New("core: USB transport corrupts measurements; use WiFi or Bluetooth")
	case TransportBluetooth:
		if err := ctl.ADB().SetTransport(spec.Device, adb.TransportBluetooth); err != nil {
			teardownNetwork()
			return 0, err
		}
	default: // WiFi
		if err := ctl.ADB().EnableTCPIP(spec.Device); err != nil {
			teardownNetwork()
			return 0, err
		}
		if err := ctl.ADB().SetTransport(spec.Device, adb.TransportWiFi); err != nil {
			teardownNetwork()
			return 0, err
		}
	}

	// 3. Mirroring (§3.2), before the monitor so its cost is measured.
	mirrorActive := false
	if spec.Mirroring {
		sess, err := ctl.MirrorSession(spec.Device)
		if err != nil {
			teardownNetwork()
			return 0, err
		}
		if err := sess.Start(0); err != nil {
			teardownNetwork()
			return 0, err
		}
		mirrorActive = true
	}
	teardownMirror := func() {
		if mirrorActive {
			if sess, err := ctl.MirrorSession(spec.Device); err == nil {
				sess.Stop()
			}
		}
	}

	// 4. Arm and start the monitor.
	if !ctl.Monsoon().Powered() {
		ctl.PowerMonitor()
	}
	if err := ctl.SetVoltage(spec.VoltageV); err != nil {
		teardownMirror()
		teardownNetwork()
		return 0, err
	}
	if err := ctl.StartMonitor(spec.Device, spec.SampleRate); err != nil {
		teardownMirror()
		teardownNetwork()
		return 0, err
	}

	// 5. CPU instrumentation.
	devCPU := trace.NewSeries("device-cpu", "percent")
	devTicker := simclock.NewTicker(p.clock, spec.CPUSamplePeriod, func(now time.Time) {
		devCPU.MustAppend(now, dev.CPU().UtilAt(now))
	})
	ctlCPU, stopCtlCPU := ctl.MonitorCPU(spec.CPUSamplePeriod)

	// 6. Run the workload; completion flows through finish exactly once.
	drv := automation.NewADBDriver(ctl.ADB(), spec.Device)
	script := spec.Workload(drv)
	start := p.clock.Now()

	finish := func(scriptErr error) {
		devTicker.Stop()
		stopCtlCPU()
		var mirrorBytes int64
		if mirrorActive {
			if sess, err := ctl.MirrorSession(spec.Device); err == nil {
				mirrorBytes = sess.BytesSent()
			}
		}
		current, stopErr := ctl.StopMonitor()
		teardownMirror()
		teardownNetwork()
		if scriptErr != nil {
			done(nil, fmt.Errorf("core: workload: %w", scriptErr))
			return
		}
		if stopErr != nil {
			done(nil, stopErr)
			return
		}
		done(&Result{
			Current:           current,
			DeviceCPU:         devCPU,
			ControllerCPU:     ctlCPU,
			EnergyMAH:         current.EnergyMAH(),
			Duration:          p.clock.Now().Sub(start),
			MirrorUploadBytes: mirrorBytes,
		}, nil)
	}

	exec := automation.NewExecutor(p.clock)
	exec.Run(script, func(scriptErr error) {
		if scriptErr != nil {
			finish(scriptErr)
			return
		}
		// Hold the monitor through the padding tail, then collect.
		p.clock.AfterFunc(spec.Padding, func() { finish(nil) })
	})
	return script.TotalWait() + spec.Padding, nil
}
