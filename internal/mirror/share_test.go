package mirror

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestShareLifecycle(t *testing.T) {
	r := newRig(t, 26)
	s := NewSession(r.dev, r.srv, 1)
	tok, err := s.Share(ShareConfig{Toolbar: false})
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := s.ShareLookup(tok)
	if !ok || cfg.Toolbar {
		t.Fatalf("lookup = %+v, %v", cfg, ok)
	}
	s.Revoke(tok)
	if _, ok := s.ShareLookup(tok); ok {
		t.Fatal("revoked token still valid")
	}
}

func TestShareTokensUnique(t *testing.T) {
	r := newRig(t, 26)
	s := NewSession(r.dev, r.srv, 1)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		tok, err := s.Share(ShareConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatal("token collision")
		}
		seen[tok] = true
	}
}

func TestShareViewEndpoint(t *testing.T) {
	r := newRig(t, 26)
	s := NewSession(r.dev, r.srv, 1)
	srv := httptest.NewServer(s.GUIHandler())
	defer srv.Close()

	// Experimenter share: toolbar on.
	tok, _ := s.Share(ShareConfig{Toolbar: true})
	resp, err := http.Get(srv.URL + "/api/view?token=" + tok)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var view struct {
		Device  string `json:"device"`
		Toolbar bool   `json:"toolbar"`
	}
	json.NewDecoder(resp.Body).Decode(&view)
	if view.Device != r.dev.Serial() || !view.Toolbar {
		t.Fatalf("view = %+v", view)
	}

	// Bogus token rejected.
	resp2, _ := http.Get(srv.URL + "/api/view?token=bogus")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("bogus token status = %d", resp2.StatusCode)
	}

	// Revoked token rejected.
	s.Revoke(tok)
	resp3, _ := http.Get(srv.URL + "/api/view?token=" + tok)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusForbidden {
		t.Fatalf("revoked token status = %d", resp3.StatusCode)
	}
}
