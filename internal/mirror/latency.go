package mirror

import (
	"time"

	"batterylab/internal/rng"
)

// Latency components of the mirroring control loop (§4.2): the time from
// a click in the experimenter's browser to the first changed frame
// arriving back. The paper measures 1.44 ± 0.12 s with a co-located
// client (1 ms network RTT) via audio/video annotation over 40 trials.
const (
	latInputDispatch = 290 * time.Millisecond // browser→GUI→ADB→device input injection
	latAppRender     = 380 * time.Millisecond // app reacts and redraws
	latCaptureEncode = 260 * time.Millisecond // scrcpy capture + encode + buffer
	latTranscode     = 330 * time.Millisecond // controller VNC transcode + noVNC
	latClientRender  = 170 * time.Millisecond // browser decodes and paints
	latSigma         = 115 * time.Millisecond // end-to-end jitter
)

// LatencyProbe models the click-to-photon measurement.
type LatencyProbe struct {
	rnd *rng.RNG
	// NetworkRTT is the experimenter-browser↔controller round trip,
	// added twice (event in, frame out).
	NetworkRTT time.Duration
}

// NewLatencyProbe returns a probe with the given client RTT.
func NewLatencyProbe(seed uint64, networkRTT time.Duration) *LatencyProbe {
	return &LatencyProbe{rnd: rng.New(seed).Fork("latency"), NetworkRTT: networkRTT}
}

// Sample draws one end-to-end latency measurement.
func (p *LatencyProbe) Sample() time.Duration {
	base := latInputDispatch + latAppRender + latCaptureEncode + latTranscode + latClientRender + 2*p.NetworkRTT
	d := time.Duration(p.rnd.Normal(float64(base), float64(latSigma)))
	if min := base / 2; d < min {
		d = min
	}
	return d
}

// Measure runs n trials and returns the samples in seconds — the data
// behind the paper's "1.44 (±0.12) sec over 40 repetitions".
func (p *LatencyProbe) Measure(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sample().Seconds()
	}
	return out
}
