package mirror

import (
	"math"
	"net"
	"testing"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/stats"
	"batterylab/internal/usb"
	"batterylab/internal/video"
	"batterylab/internal/wifi"
)

type rig struct {
	clk *simclock.Virtual
	dev *device.Device
	srv *adb.Server
}

func newRig(t *testing.T, apiLevel int) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	dev, err := device.New(clk, device.Config{Seed: 1, APILevel: apiLevel})
	if err != nil {
		t.Fatal(err)
	}
	hub := usb.NewHub(2)
	hub.Attach(0, dev)
	ap := wifi.NewAP("blab", wifi.ModeNAT)
	ap.Connect(dev)
	srv := adb.NewServer(hub, ap)
	srv.Register(dev)
	return &rig{clk: clk, dev: dev, srv: srv}
}

func TestAgentRequiresAPILevel(t *testing.T) {
	r := newRig(t, 19) // Android 4.4
	a := NewAgent(r.dev, nil, 0)
	if err := a.Start(r.srv); err == nil {
		t.Fatal("agent started on API 19")
	}
}

func TestAgentRequiresADB(t *testing.T) {
	r := newRig(t, 26)
	r.dev.Shutdown() // ADB offline
	a := NewAgent(r.dev, nil, 0)
	if err := a.Start(r.srv); err == nil {
		t.Fatal("agent started without ADB")
	}
}

func TestAgentAddsEncoderLoad(t *testing.T) {
	r := newRig(t, 26)
	// Playing video: 30 updates/s.
	r.dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1024))
	p := video.NewPlayer("/sdcard/v.mp4")
	r.dev.Install(p)
	r.dev.LaunchApp(video.PackageName)

	r.clk.Advance(2 * time.Second)
	before := r.dev.CPU().UtilAt(r.clk.Now())
	a := NewAgent(r.dev, nil, 0)
	if err := a.Start(r.srv); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(2 * time.Second)
	after := r.dev.CPU().UtilAt(r.clk.Now())
	// Encoder at 30 ups: 2.5 + 7.5 = ~10 %.
	if after-before < 6 || after-before > 15 {
		t.Fatalf("encoder load delta = %.1f, want ~10", after-before)
	}
	a.Stop()
	r.clk.Advance(time.Second)
	if r.dev.CPU().FindProcess("scrcpy-agent") != nil {
		t.Fatal("agent process survived stop")
	}
}

func TestAgentBitrateCapBoundsUpload(t *testing.T) {
	r := newRig(t, 26)
	r.dev.Storage().Push("/sdcard/v.mp4", video.SampleMP4(1024))
	p := video.NewPlayer("/sdcard/v.mp4")
	r.dev.Install(p)
	r.dev.LaunchApp(video.PackageName)

	a := NewAgent(r.dev, nil, 1.0)
	a.Start(r.srv)
	const dur = 60 * time.Second
	r.clk.Advance(dur)
	sent := a.BytesSent()
	// 30 ups × 80 kbit = 2.4 Mbps raw, capped at 1 Mbps → 7.5 MB/min.
	capBytes := int64(1e6 / 8 * dur.Seconds())
	if sent > capBytes+capBytes/100 {
		t.Fatalf("sent %d > cap %d", sent, capBytes)
	}
	if sent < capBytes*9/10 {
		t.Fatalf("sent %d, want near cap %d for full-rate video", sent, capBytes)
	}
}

func TestAgentIdleScreenSendsLittle(t *testing.T) {
	r := newRig(t, 26)
	a := NewAgent(r.dev, nil, 1.0)
	a.Start(r.srv)
	r.clk.Advance(time.Minute)
	// Home screen: no updates → no stream bytes.
	if sent := a.BytesSent(); sent != 0 {
		t.Fatalf("idle screen sent %d bytes", sent)
	}
}

func TestSessionLifecycleAndSink(t *testing.T) {
	r := newRig(t, 26)
	s := NewSession(r.dev, r.srv, 99)
	if s.Active() {
		t.Fatal("session starts active")
	}
	if err := s.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(0); err == nil {
		t.Fatal("double start accepted")
	}
	// Drive some screen activity.
	r.dev.Framebuffer().SetActivity(30, 1)
	r.clk.Advance(10 * time.Second)
	in, out := s.VNC().Traffic()
	if in == 0 || out == 0 {
		t.Fatal("no stream traffic")
	}
	if out >= in {
		t.Fatalf("noVNC output %d should compress below input %d", out, in)
	}
	s.Stop()
	if s.Active() {
		t.Fatal("still active")
	}
	s.Stop() // idempotent
}

func TestVNCLoadModel(t *testing.T) {
	clk := simclock.NewVirtual()
	v := NewVNCServer(5)
	if v.LoadPercent(clk.Now()) != 0 {
		t.Fatal("idle VNC has load")
	}
	v.Activate()
	v.OnSegment(20, 1000) // browser-load-like update rate
	var samples []float64
	for i := 0; i < 200; i++ {
		clk.Advance(200 * time.Millisecond)
		samples = append(samples, v.LoadPercent(clk.Now()))
	}
	med := stats.Quantile(samples, 0.5)
	if med < 45 || med > 70 {
		t.Fatalf("live median load = %.1f, want 45-70 (controller adds base+polling)", med)
	}
	v.Deactivate()
	if v.LoadPercent(clk.Now()) != 0 {
		t.Fatal("deactivated VNC has load")
	}
	if v.MemoryMB() != 0 {
		t.Fatal("deactivated VNC has memory")
	}
}

func TestVNCClients(t *testing.T) {
	v := NewVNCServer(1)
	v.AddClient("a")
	v.AddClient("b")
	if v.Clients() != 2 {
		t.Fatalf("clients = %d", v.Clients())
	}
	v.RemoveClient("a")
	if v.Clients() != 1 {
		t.Fatalf("clients = %d", v.Clients())
	}
}

func TestLatencyProbeMatchesPaper(t *testing.T) {
	p := NewLatencyProbe(42, time.Millisecond)
	samples := p.Measure(40)
	mean := stats.Mean(samples)
	std := stats.Std(samples)
	if math.Abs(mean-1.44) > 0.12 {
		t.Fatalf("latency mean = %.3f s, paper 1.44", mean)
	}
	if std < 0.04 || std > 0.25 {
		t.Fatalf("latency std = %.3f s, paper 0.12", std)
	}
}

func TestLatencyGrowsWithRTT(t *testing.T) {
	near := NewLatencyProbe(1, time.Millisecond)
	far := NewLatencyProbe(1, 150*time.Millisecond)
	nm := stats.Mean(near.Measure(100))
	fm := stats.Mean(far.Measure(100))
	if fm <= nm {
		t.Fatalf("latency should grow with RTT: %.3f vs %.3f", nm, fm)
	}
}

func TestRFBHandshakeAndFrames(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() {
		if err := Handshake(server, ServerInit{Width: 720, Height: 1280, Name: "J7DUO"}); err != nil {
			errc <- err
			return
		}
		errc <- WriteUpdate(server, Update{X: 0, Y: 0, W: 720, H: 1280, Payload: []byte("seg-1")})
	}()

	si, err := ClientHandshake(client)
	if err != nil {
		t.Fatal(err)
	}
	if si.Width != 720 || si.Height != 1280 || si.Name != "J7DUO" {
		t.Fatalf("ServerInit = %+v", si)
	}
	u, err := ReadUpdate(client)
	if err != nil {
		t.Fatal(err)
	}
	if string(u.Payload) != "seg-1" || u.W != 720 {
		t.Fatalf("update = %+v", u)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestRFBEvents(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	go func() {
		WriteEvent(client, Event{Type: MsgPointerEvent, Buttons: 1, X: 100, Y: 200})
		WriteEvent(client, Event{Type: MsgKeyEvent, Down: true, Key: 0xff0d})
	}()
	ev, err := ReadEvent(server)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != MsgPointerEvent || ev.X != 100 || ev.Y != 200 || ev.Buttons != 1 {
		t.Fatalf("pointer = %+v", ev)
	}
	ev, err = ReadEvent(server)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != MsgKeyEvent || !ev.Down || ev.Key != 0xff0d {
		t.Fatalf("key = %+v", ev)
	}
}

func TestRFBBadEventType(t *testing.T) {
	if err := WriteEvent(io_discard{}, Event{Type: 99}); err == nil {
		t.Fatal("bad event type accepted")
	}
}

type io_discard struct{}

func (io_discard) Write(p []byte) (int, error) { return len(p), nil }
