package mirror

import (
	"net"
	"testing"
	"time"

	"batterylab/internal/device"
)

func rfbRig(t *testing.T) (*rig, *Session, *RFBServer, net.Conn) {
	t.Helper()
	r := newRig(t, 26)
	sess := NewSession(r.dev, r.srv, 5)
	if err := sess.Start(0); err != nil {
		t.Fatal(err)
	}
	srv, addr, err := ServeRFB(sess, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); sess.Stop() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return r, sess, srv, conn
}

func TestRFBServerHandshakeAndStream(t *testing.T) {
	r, sess, _, conn := rfbRig(t)
	si, err := ClientHandshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if si.Name != r.dev.Serial() || si.Width != 720 {
		t.Fatalf("ServerInit = %+v", si)
	}
	// Client registered.
	waitFor(t, func() bool { return sess.VNC().Clients() == 1 })

	// Generate screen activity; the agent ticks on the virtual clock.
	r.dev.Framebuffer().SetActivity(30, 1)
	go func() {
		for i := 0; i < 50; i++ {
			r.clk.Advance(250 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	u, err := ReadUpdate(conn)
	if err != nil {
		t.Fatalf("reading update: %v", err)
	}
	if len(u.Payload) == 0 || u.W != 720 {
		t.Fatalf("update = %d bytes, w=%d", len(u.Payload), u.W)
	}
}

func TestRFBServerInputPath(t *testing.T) {
	r, _, _, conn := rfbRig(t)
	if _, err := ClientHandshake(conn); err != nil {
		t.Fatal(err)
	}
	app := &captureApp{pkg: "com.app"}
	r.dev.Install(app)
	r.dev.LaunchApp("com.app")

	// Pointer tap and an Enter keypress.
	if err := WriteEvent(conn, Event{Type: MsgPointerEvent, Buttons: 1, X: 100, Y: 200}); err != nil {
		t.Fatal(err)
	}
	if err := WriteEvent(conn, Event{Type: MsgKeyEvent, Down: true, Key: 0xff0d}); err != nil {
		t.Fatal(err)
	}
	// Key release must not duplicate.
	if err := WriteEvent(conn, Event{Type: MsgKeyEvent, Down: false, Key: 0xff0d}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(app.Events()) >= 2 })
	events := app.Events()
	if events[0].Kind != device.InputTap || events[0].X != 100 {
		t.Fatalf("tap = %+v", events[0])
	}
	if events[1].Kind != device.InputKey || events[1].Key != "KEYCODE_ENTER" {
		t.Fatalf("key = %+v", events[1])
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(app.Events()); n != 2 {
		t.Fatalf("key release duplicated input: %d events", n)
	}
}

func TestRFBServerClientDisconnect(t *testing.T) {
	_, sess, _, conn := rfbRig(t)
	if _, err := ClientHandshake(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sess.VNC().Clients() == 1 })
	conn.Close()
	waitFor(t, func() bool { return sess.VNC().Clients() == 0 })
}

func TestKeysymMapping(t *testing.T) {
	cases := map[uint32]string{
		0xff0d: "KEYCODE_ENTER",
		0xff54: "KEYCODE_DPAD_DOWN",
		'a':    "KEYCODE_A",
		'Z':    "KEYCODE_Z",
		'7':    "KEYCODE_7",
		' ':    "KEYCODE_SPACE",
	}
	for sym, want := range cases {
		got, ok := keysymToAndroid(sym)
		if !ok || got != want {
			t.Errorf("keysym %#x = %q, %v; want %q", sym, got, ok, want)
		}
	}
	if _, ok := keysymToAndroid(0xffff); ok {
		t.Error("unmapped keysym accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
