package mirror

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// RFBServer serves a mirroring session to noVNC-style clients over real
// TCP: the RFB handshake, a stream of FramebufferUpdate segments carrying
// the agent's encoded output, and client pointer/key events forwarded to
// the device through the session's ADB path — the §3.2 remote-control
// loop end to end.
type RFBServer struct {
	sess *Session
	ln   net.Listener

	mu      sync.Mutex
	conns   map[int64]*rfbConn
	nextID  int64
	dropped atomic.Int64
}

type rfbConn struct {
	conn net.Conn
	out  chan Update
}

// streamQueueDepth bounds per-client buffering; a slow viewer drops
// segments rather than stalling the pipeline (streaming semantics).
const streamQueueDepth = 64

// ServeRFB starts serving the session's stream on addr and returns the
// server with its bound address.
func ServeRFB(sess *Session, addr string) (*RFBServer, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	s := &RFBServer{sess: sess, ln: ln, conns: make(map[int64]*rfbConn)}
	sess.VNC().setForward(s.broadcast)
	go s.acceptLoop()
	return s, ln.Addr().String(), nil
}

// Close stops the listener and disconnects all viewers.
func (s *RFBServer) Close() error {
	s.sess.VNC().setForward(nil)
	err := s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	return err
}

// DroppedSegments reports segments discarded due to slow viewers.
func (s *RFBServer) DroppedSegments() int64 { return s.dropped.Load() }

func (s *RFBServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *RFBServer) serveConn(conn net.Conn) {
	defer conn.Close()
	if err := Handshake(conn, ServerInit{
		Width: 720, Height: 1280, Name: s.sess.Device().Serial(),
	}); err != nil {
		return
	}
	rc := &rfbConn{conn: conn, out: make(chan Update, streamQueueDepth)}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.conns[id] = rc
	s.mu.Unlock()
	s.sess.VNC().AddClient(fmt.Sprintf("rfb-%d", id))
	defer func() {
		s.mu.Lock()
		delete(s.conns, id)
		s.mu.Unlock()
		s.sess.VNC().RemoveClient(fmt.Sprintf("rfb-%d", id))
	}()

	// Writer: pump queued updates to the socket.
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for u := range rc.out {
			if err := WriteUpdate(conn, u); err != nil {
				return
			}
		}
	}()

	// Reader: translate client events into device input.
	s.readEvents(conn)
	close(rc.out)
	<-writeDone
}

// readEvents forwards client input until the connection drops.
func (s *RFBServer) readEvents(r io.Reader) {
	for {
		ev, err := ReadEvent(r)
		if err != nil {
			return
		}
		switch ev.Type {
		case MsgPointerEvent:
			if ev.Buttons&1 != 0 { // left button press = tap
				s.sess.Tap(int(ev.X), int(ev.Y))
			}
		case MsgKeyEvent:
			if !ev.Down {
				continue
			}
			if key, ok := keysymToAndroid(ev.Key); ok {
				s.sess.Key(key)
			}
		}
	}
}

// keysymToAndroid maps the X11 keysyms noVNC sends to Android key codes
// — the subset the BatteryLab GUI needs.
func keysymToAndroid(sym uint32) (string, bool) {
	switch sym {
	case 0xff0d:
		return "KEYCODE_ENTER", true
	case 0xff08:
		return "KEYCODE_DEL", true
	case 0xff1b:
		return "KEYCODE_BACK", true
	case 0xff52:
		return "KEYCODE_DPAD_UP", true
	case 0xff54:
		return "KEYCODE_DPAD_DOWN", true
	case 0xff51:
		return "KEYCODE_DPAD_LEFT", true
	case 0xff53:
		return "KEYCODE_DPAD_RIGHT", true
	case 0xff09:
		return "KEYCODE_TAB", true
	case ' ':
		return "KEYCODE_SPACE", true
	}
	// Printable ASCII letters/digits map directly.
	if sym >= '0' && sym <= '9' {
		return fmt.Sprintf("KEYCODE_%c", sym), true
	}
	if sym >= 'a' && sym <= 'z' {
		return fmt.Sprintf("KEYCODE_%c", sym-32), true
	}
	if sym >= 'A' && sym <= 'Z' {
		return fmt.Sprintf("KEYCODE_%c", sym), true
	}
	return "", false
}

// broadcast fans one encoded segment out to every connected viewer.
func (s *RFBServer) broadcast(updateRate float64, payload []byte) {
	u := Update{X: 0, Y: 0, W: 720, H: 1280, Payload: payload}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		select {
		case c.out <- u:
		default:
			s.dropped.Add(1)
		}
	}
}
