package mirror

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the wire protocol between noVNC clients and the
// controller's VNC server: a compact subset of RFB 3.8 (the protocol
// tigervnc speaks) sufficient for BatteryLab's GUI — framebuffer update
// segments flowing to the client and pointer/key events flowing back.
// The framing is real and runs over any net.Conn; the payload bytes are
// the (simulated) encoded stream.

// ProtocolVersion is the RFB handshake banner.
const ProtocolVersion = "RFB 003.008\n"

// Client→server message types (RFB §6.4).
const (
	msgSetEncodings      = 2
	msgFramebufferUpdReq = 3
	MsgKeyEvent          = 4
	MsgPointerEvent      = 5
)

// Server→client message types.
const msgFramebufferUpdate = 0

// ServerInit describes the mirrored display.
type ServerInit struct {
	Width  uint16
	Height uint16
	Name   string
}

// Handshake performs the server side of the RFB handshake on rw: version
// exchange, "none" security, ServerInit.
func Handshake(rw io.ReadWriter, init ServerInit) error {
	if _, err := io.WriteString(rw, ProtocolVersion); err != nil {
		return err
	}
	buf := make([]byte, len(ProtocolVersion))
	if _, err := io.ReadFull(rw, buf); err != nil {
		return fmt.Errorf("rfb: reading client version: %w", err)
	}
	if string(buf[:4]) != "RFB " {
		return fmt.Errorf("rfb: bad client version %q", buf)
	}
	// Security: offer exactly "none" (1), read the client's choice,
	// answer OK.
	if _, err := rw.Write([]byte{1, 1}); err != nil {
		return err
	}
	choice := make([]byte, 1)
	if _, err := io.ReadFull(rw, choice); err != nil {
		return err
	}
	if choice[0] != 1 {
		return fmt.Errorf("rfb: client chose unsupported security %d", choice[0])
	}
	if err := binary.Write(rw, binary.BigEndian, uint32(0)); err != nil { // SecurityResult OK
		return err
	}
	// ClientInit: shared flag.
	if _, err := io.ReadFull(rw, choice); err != nil {
		return err
	}
	// ServerInit: width, height, a zeroed 16-byte pixel format, name.
	var hdr [20]byte
	binary.BigEndian.PutUint16(hdr[0:], init.Width)
	binary.BigEndian.PutUint16(hdr[2:], init.Height)
	if _, err := rw.Write(hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(rw, binary.BigEndian, uint32(len(init.Name))); err != nil {
		return err
	}
	_, err := io.WriteString(rw, init.Name)
	return err
}

// ClientHandshake performs the client side and returns the ServerInit.
func ClientHandshake(rw io.ReadWriter) (ServerInit, error) {
	var si ServerInit
	buf := make([]byte, len(ProtocolVersion))
	if _, err := io.ReadFull(rw, buf); err != nil {
		return si, err
	}
	if _, err := io.WriteString(rw, ProtocolVersion); err != nil {
		return si, err
	}
	// Security list.
	n := make([]byte, 1)
	if _, err := io.ReadFull(rw, n); err != nil {
		return si, err
	}
	types := make([]byte, n[0])
	if _, err := io.ReadFull(rw, types); err != nil {
		return si, err
	}
	if _, err := rw.Write([]byte{1}); err != nil { // choose none
		return si, err
	}
	var result uint32
	if err := binary.Read(rw, binary.BigEndian, &result); err != nil {
		return si, err
	}
	if result != 0 {
		return si, fmt.Errorf("rfb: security failed (%d)", result)
	}
	if _, err := rw.Write([]byte{1}); err != nil { // ClientInit: shared
		return si, err
	}
	var hdr [20]byte
	if _, err := io.ReadFull(rw, hdr[:]); err != nil {
		return si, err
	}
	si.Width = binary.BigEndian.Uint16(hdr[0:])
	si.Height = binary.BigEndian.Uint16(hdr[2:])
	var nameLen uint32
	if err := binary.Read(rw, binary.BigEndian, &nameLen); err != nil {
		return si, err
	}
	if nameLen > 1<<16 {
		return si, fmt.Errorf("rfb: absurd name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(rw, name); err != nil {
		return si, err
	}
	si.Name = string(name)
	return si, nil
}

// Update is one framebuffer update segment.
type Update struct {
	X, Y, W, H uint16
	Payload    []byte
}

// WriteUpdate sends a FramebufferUpdate with one rectangle carrying a
// length-prefixed encoded payload (pseudo-encoding -240, BatteryLab
// stream).
func WriteUpdate(w io.Writer, u Update) error {
	var hdr [4]byte
	hdr[0] = msgFramebufferUpdate
	binary.BigEndian.PutUint16(hdr[2:], 1) // one rectangle
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rect [12]byte
	binary.BigEndian.PutUint16(rect[0:], u.X)
	binary.BigEndian.PutUint16(rect[2:], u.Y)
	binary.BigEndian.PutUint16(rect[4:], u.W)
	binary.BigEndian.PutUint16(rect[6:], u.H)
	enc := int32(-240)
	binary.BigEndian.PutUint32(rect[8:], uint32(enc))
	if _, err := w.Write(rect[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(u.Payload))); err != nil {
		return err
	}
	_, err := w.Write(u.Payload)
	return err
}

// ReadUpdate reads a FramebufferUpdate written by WriteUpdate.
func ReadUpdate(r io.Reader) (Update, error) {
	var u Update
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return u, err
	}
	if hdr[0] != msgFramebufferUpdate {
		return u, fmt.Errorf("rfb: unexpected message type %d", hdr[0])
	}
	if n := binary.BigEndian.Uint16(hdr[2:]); n != 1 {
		return u, fmt.Errorf("rfb: expected 1 rectangle, got %d", n)
	}
	var rect [12]byte
	if _, err := io.ReadFull(r, rect[:]); err != nil {
		return u, err
	}
	u.X = binary.BigEndian.Uint16(rect[0:])
	u.Y = binary.BigEndian.Uint16(rect[2:])
	u.W = binary.BigEndian.Uint16(rect[4:])
	u.H = binary.BigEndian.Uint16(rect[6:])
	var plen uint32
	if err := binary.Read(r, binary.BigEndian, &plen); err != nil {
		return u, err
	}
	if plen > 1<<24 {
		return u, fmt.Errorf("rfb: absurd payload length %d", plen)
	}
	u.Payload = make([]byte, plen)
	_, err := io.ReadFull(r, u.Payload)
	return u, err
}

// Event is a client input event.
type Event struct {
	Type    byte // MsgKeyEvent or MsgPointerEvent
	Down    bool
	Key     uint32 // keysym for key events
	Buttons byte   // button mask for pointer events
	X, Y    uint16
}

// WriteEvent sends a client event.
func WriteEvent(w io.Writer, e Event) error {
	switch e.Type {
	case MsgKeyEvent:
		var msg [8]byte
		msg[0] = MsgKeyEvent
		if e.Down {
			msg[1] = 1
		}
		binary.BigEndian.PutUint32(msg[4:], e.Key)
		_, err := w.Write(msg[:])
		return err
	case MsgPointerEvent:
		var msg [6]byte
		msg[0] = MsgPointerEvent
		msg[1] = e.Buttons
		binary.BigEndian.PutUint16(msg[2:], e.X)
		binary.BigEndian.PutUint16(msg[4:], e.Y)
		_, err := w.Write(msg[:])
		return err
	default:
		return fmt.Errorf("rfb: unsupported event type %d", e.Type)
	}
}

// ReadEvent reads the next client event, skipping SetEncodings and
// FramebufferUpdateRequest bookkeeping messages.
func ReadEvent(r io.Reader) (Event, error) {
	for {
		var t [1]byte
		if _, err := io.ReadFull(r, t[:]); err != nil {
			return Event{}, err
		}
		switch t[0] {
		case MsgKeyEvent:
			var rest [7]byte
			if _, err := io.ReadFull(r, rest[:]); err != nil {
				return Event{}, err
			}
			return Event{
				Type: MsgKeyEvent,
				Down: rest[0] == 1,
				Key:  binary.BigEndian.Uint32(rest[3:]),
			}, nil
		case MsgPointerEvent:
			var rest [5]byte
			if _, err := io.ReadFull(r, rest[:]); err != nil {
				return Event{}, err
			}
			return Event{
				Type:    MsgPointerEvent,
				Buttons: rest[0],
				X:       binary.BigEndian.Uint16(rest[1:]),
				Y:       binary.BigEndian.Uint16(rest[3:]),
			}, nil
		case msgSetEncodings:
			var rest [3]byte
			if _, err := io.ReadFull(r, rest[:]); err != nil {
				return Event{}, err
			}
			n := binary.BigEndian.Uint16(rest[1:])
			if _, err := io.CopyN(io.Discard, r, int64(n)*4); err != nil {
				return Event{}, err
			}
		case msgFramebufferUpdReq:
			if _, err := io.CopyN(io.Discard, r, 9); err != nil {
				return Event{}, err
			}
		default:
			return Event{}, fmt.Errorf("rfb: unknown client message %d", t[0])
		}
	}
}
