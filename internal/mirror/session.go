package mirror

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"batterylab/internal/adb"
	"batterylab/internal/device"
)

// Session ties the pipeline together for one device: the on-device
// agent, the controller-side VNC server, and the GUI backend that noVNC
// clients talk to. Input from the GUI travels to the device over ADB —
// the same channel scrcpy uses — so a session only works while an ADB
// transport is available (the paper's reason the BT keyboard cannot
// support mirroring).
type Session struct {
	dev *device.Device
	srv *adb.Server
	vnc *VNCServer

	mu     sync.Mutex
	agent  *Agent
	shares map[string]ShareConfig
}

// ShareConfig is what a shared GUI link grants a test participant.
type ShareConfig struct {
	// Toolbar controls whether the Table 1 toolbar is rendered on the
	// shared page: experimenters see it; crowdsourced testers usually
	// should not (§3.2).
	Toolbar bool
}

// NewSession builds an inactive session.
func NewSession(dev *device.Device, srv *adb.Server, seed uint64) *Session {
	return &Session{
		dev: dev, srv: srv, vnc: NewVNCServer(seed),
		shares: make(map[string]ShareConfig),
	}
}

// Share mints an access token for a test participant with the given view
// configuration — the link an experimenter hands to a volunteer or a
// Mechanical Turk worker.
func (s *Session) Share(cfg ShareConfig) (token string, err error) {
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return "", err
	}
	token = hex.EncodeToString(raw)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shares[token] = cfg
	return token, nil
}

// Revoke invalidates a share token.
func (s *Session) Revoke(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.shares, token)
}

// ShareLookup resolves a token.
func (s *Session) ShareLookup(token string) (ShareConfig, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, ok := s.shares[token]
	return cfg, ok
}

// VNC exposes the controller-side server (the controller host model
// reads its load).
func (s *Session) VNC() *VNCServer { return s.vnc }

// Device reports the mirrored device.
func (s *Session) Device() *device.Device { return s.dev }

// Start activates mirroring at the given bitrate cap (0 = default).
func (s *Session) Start(bitrateMbps float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agent != nil {
		return fmt.Errorf("mirror: session already active for %s", s.dev.Serial())
	}
	agent := NewAgent(s.dev, s.vnc, bitrateMbps)
	if err := agent.Start(s.srv); err != nil {
		return err
	}
	s.vnc.Activate()
	s.agent = agent
	return nil
}

// Stop deactivates mirroring.
func (s *Session) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agent == nil {
		return
	}
	s.agent.Stop()
	s.agent = nil
	s.vnc.Deactivate()
}

// Active reports whether the session is mirroring.
func (s *Session) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agent != nil
}

// BytesSent reports the agent's upload volume for the current session
// (0 when inactive).
func (s *Session) BytesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.agent == nil {
		return 0
	}
	return s.agent.BytesSent()
}

// Tap, Key, Text and Scroll forward GUI input toward the device via ADB.
func (s *Session) Tap(x, y int) error {
	_, err := s.srv.Shell(s.dev.Serial(), fmt.Sprintf("input tap %d %d", x, y))
	return err
}

// Key forwards a key event.
func (s *Session) Key(key string) error {
	_, err := s.srv.Shell(s.dev.Serial(), "input keyevent "+key)
	return err
}

// Text forwards typed text.
func (s *Session) Text(text string) error {
	_, err := s.srv.Shell(s.dev.Serial(), "input text "+text)
	return err
}

// Scroll forwards a scroll gesture.
func (s *Session) Scroll(down bool) error {
	cmd := "input swipe 360 300 360 900 200"
	if down {
		cmd = "input swipe 360 900 360 300 200"
	}
	_, err := s.srv.Shell(s.dev.Serial(), cmd)
	return err
}

// GUIHandler returns the HTTP backend the noVNC page's AJAX calls hit
// (§3.2: "the GUI connects to the controller's backend using AJAX calls
// to some internal restful APIs").
//
//	GET  /api/session       -> session state
//	POST /api/input         -> {"type":"tap"|"key"|"text"|"scroll", ...}
func (s *Session) GUIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/session", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		in, out := s.vnc.Traffic()
		writeJSON(w, map[string]any{
			"device":    s.dev.Serial(),
			"active":    s.Active(),
			"clients":   s.vnc.Clients(),
			"bytes_in":  in,
			"bytes_out": out,
		})
	})
	mux.HandleFunc("/api/view", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		cfg, ok := s.ShareLookup(r.URL.Query().Get("token"))
		if !ok {
			http.Error(w, "invalid or revoked share token", http.StatusForbidden)
			return
		}
		writeJSON(w, map[string]any{
			"device":  s.dev.Serial(),
			"active":  s.Active(),
			"toolbar": cfg.Toolbar,
		})
	})
	mux.HandleFunc("/api/input", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if !s.Active() {
			http.Error(w, "mirroring not active", http.StatusConflict)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var req struct {
			Type string `json:"type"`
			X    int    `json:"x"`
			Y    int    `json:"y"`
			Key  string `json:"key"`
			Text string `json:"text"`
			Down bool   `json:"down"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad JSON", http.StatusBadRequest)
			return
		}
		switch req.Type {
		case "tap":
			err = s.Tap(req.X, req.Y)
		case "key":
			err = s.Key(req.Key)
		case "text":
			err = s.Text(req.Text)
		case "scroll":
			err = s.Scroll(req.Down)
		default:
			http.Error(w, "unknown input type "+req.Type, http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
