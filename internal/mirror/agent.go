// Package mirror implements BatteryLab's device mirroring pipeline
// (§3.2): a scrcpy-like agent on the device captures and encodes the
// screen (H.264-style, bitrate-capped at 1 Mbps as in the paper), streams
// it over WiFi to the controller, where a VNC server re-encodes it for
// noVNC browser clients; a small HTTP GUI backend carries the toolbar and
// input events back toward the device through ADB.
//
// The pipeline's measured costs are emergent from this model: the agent's
// encoder load adds ~5 % device CPU under the browser workload (Fig. 4)
// and ~60 mA during video playback (Fig. 2); upload volume lands around
// 32 MB per 7-minute test against the 50 MB cap bound (§4.2); and the
// controller-side transcode drives the Pi's CPU from a flat 25 % to a
// ~75 % median (Fig. 5).
package mirror

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/adb"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
)

// Encoder parameters.
const (
	// DefaultBitrateMbps is scrcpy's configured video bitrate cap; the
	// paper sets 1 Mbps.
	DefaultBitrateMbps = 1.0
	// bitsPerUpdate is the encoded size of one full-frame-equivalent
	// change before the cap (H.264 at the J7's resolution).
	bitsPerUpdate = 80_000
	// agentTick is the streaming granularity.
	agentTick = 250 * time.Millisecond
	// localLinkMbps is the device→controller WiFi hop rate used for the
	// stream's chunked uploads.
	localLinkMbps = 45.0
	// MinAPILevel: Android mirroring needs API 21+ (§3.2).
	MinAPILevel = 21
)

// agentProcName is the on-device encoder process.
const agentProcName = "scrcpy-agent"

// FrameSink receives the agent's encoded output — implemented by the
// controller-side VNC server.
type FrameSink interface {
	OnSegment(updateRate float64, bytes int64)
}

// Agent is the device-side capture/encode/stream process.
type Agent struct {
	dev         *device.Device
	sink        FrameSink
	bitrateMbps float64

	mu        sync.Mutex
	running   bool
	proc      *device.Process
	ticker    *simclock.Ticker
	bytesSent int64
}

// NewAgent builds an agent for dev streaming to sink at the given bitrate
// cap (0 means DefaultBitrateMbps).
func NewAgent(dev *device.Device, sink FrameSink, bitrateMbps float64) *Agent {
	if bitrateMbps <= 0 {
		bitrateMbps = DefaultBitrateMbps
	}
	return &Agent{dev: dev, sink: sink, bitrateMbps: bitrateMbps}
}

// Start launches the on-device agent. Mirroring requires ADB (scrcpy runs
// atop it): the caller passes the ADB server so availability and the API
// level gate are enforced exactly where the real platform fails.
func (a *Agent) Start(srv *adb.Server) error {
	if a.dev.Config().OS != "android" {
		return fmt.Errorf("mirror: device mirroring is Android-only (got %s)", a.dev.Config().OS)
	}
	if a.dev.Config().APILevel < MinAPILevel {
		return fmt.Errorf("mirror: device API %d < %d", a.dev.Config().APILevel, MinAPILevel)
	}
	if srv != nil {
		if _, err := srv.Shell(a.dev.Serial(), "echo scrcpy-start"); err != nil {
			return fmt.Errorf("mirror: ADB channel required: %w", err)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running {
		return fmt.Errorf("mirror: agent already running on %s", a.dev.Serial())
	}
	a.running = true
	a.proc = a.dev.CPU().StartProcess(agentProcName)
	a.proc.SetMemMB(48)
	a.ticker = simclock.NewTicker(a.dev.Clock(), agentTick, a.tick)
	a.dev.Logcat().Append("scrcpy", device.Info, "agent started")
	return nil
}

// tick encodes one segment: reads the framebuffer change rate, applies
// the bitrate cap, accounts the upload and the encoder CPU, and hands
// the segment to the sink.
func (a *Agent) tick(now time.Time) {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return
	}
	proc := a.proc
	sink := a.sink
	cap := a.bitrateMbps
	a.mu.Unlock()

	rate := a.dev.Framebuffer().UpdateRate()
	// Encoder CPU: fixed capture cost plus per-update encode cost. The
	// cap also bounds CPU (the encoder degrades quality, not speed).
	encUtil := 2.5 + 0.25*rate
	if encUtil > 2.5+0.25*40 {
		encUtil = 2.5 + 0.25*40
	}
	proc.SetLoad(encUtil, 0.8)

	bps := rate * bitsPerUpdate
	if bps > cap*1e6 {
		bps = cap * 1e6
	}
	segBytes := int64(bps * agentTick.Seconds() / 8)
	if segBytes > 0 {
		a.dev.WiFi().Transfer(segBytes, localLinkMbps, true)
	}
	a.mu.Lock()
	a.bytesSent += segBytes
	a.mu.Unlock()
	if sink != nil {
		sink.OnSegment(rate, segBytes)
	}
}

// Stop terminates the agent process.
func (a *Agent) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.running {
		return
	}
	a.running = false
	a.ticker.Stop()
	a.dev.CPU().KillByName(agentProcName)
	a.proc = nil
	a.dev.Logcat().Append("scrcpy", device.Info, "agent stopped")
}

// Running reports whether the agent is streaming.
func (a *Agent) Running() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running
}

// BytesSent reports the cumulative encoded upload volume.
func (a *Agent) BytesSent() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytesSent
}

// BitrateMbps reports the configured cap.
func (a *Agent) BitrateMbps() float64 { return a.bitrateMbps }
