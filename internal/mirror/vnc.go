package mirror

import (
	"sync"
	"time"

	"batterylab/internal/rng"
)

// noVNCCompression is the extra compression noVNC applies on top of the
// already-encoded stream (§4.2: 32 MB observed vs the ~50 MB 1 Mbps
// bound).
const noVNCCompression = 0.85

// VNCServer is the controller-side half of the pipeline: it receives the
// agent's stream, transcodes it into the VNC session that noVNC clients
// watch, and forwards client input back to the device. Its CPU cost is
// the dominant controller-side expense of mirroring (Fig. 5).
type VNCServer struct {
	noise *rng.RNG

	mu         sync.Mutex
	active     bool
	updateRate float64 // latest observed full-frame-equivalents/sec
	bytesIn    int64
	bytesOut   int64
	segments   int64
	clients    map[string]bool
	forward    func(updateRate float64, payload []byte)
}

// NewVNCServer returns an idle server.
func NewVNCServer(seed uint64) *VNCServer {
	return &VNCServer{
		noise:   rng.New(seed).Fork("vnc"),
		clients: make(map[string]bool),
	}
}

// Activate marks a mirroring session live (tigervnc + noVNC processes
// up).
func (v *VNCServer) Activate() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.active = true
}

// Deactivate tears the session down.
func (v *VNCServer) Deactivate() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.active = false
	v.updateRate = 0
}

// Active reports whether a session is live.
func (v *VNCServer) Active() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.active
}

// setForward installs a stream target (the RFB server); nil uninstalls.
func (v *VNCServer) setForward(f func(updateRate float64, payload []byte)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.forward = f
}

// OnSegment implements FrameSink.
func (v *VNCServer) OnSegment(updateRate float64, bytes int64) {
	v.mu.Lock()
	if !v.active {
		v.mu.Unlock()
		return
	}
	v.updateRate = updateRate
	v.bytesIn += bytes
	v.bytesOut += int64(float64(bytes) * noVNCCompression)
	v.segments++
	forward := v.forward
	v.mu.Unlock()
	if forward != nil && bytes > 0 {
		// The payload content is synthetic (the encoder is simulated);
		// its size is the real quantity.
		forward(updateRate, make([]byte, int(float64(bytes)*noVNCCompression)))
	}
}

// AddClient registers a browser viewer (noVNC session id).
func (v *VNCServer) AddClient(id string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.clients[id] = true
}

// RemoveClient drops a viewer.
func (v *VNCServer) RemoveClient(id string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.clients, id)
}

// Clients reports connected viewer count.
func (v *VNCServer) Clients() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.clients)
}

// Traffic reports cumulative stream bytes (from device, to viewers).
func (v *VNCServer) Traffic() (in, out int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bytesIn, v.bytesOut
}

// LoadPercent reports the mirroring stack's controller CPU share at the
// given instant: zero when idle; when live, a substantial fixed cost
// (scrcpy receiver + X server + VNC encode) plus a per-update cost, with
// sampling noise — calibrated to Fig. 5's ~75 % median and >95 % top
// decile under the browser workload.
func (v *VNCServer) LoadPercent(now time.Time) float64 {
	v.mu.Lock()
	active := v.active
	rate := v.updateRate
	v.mu.Unlock()
	if !active {
		return 0
	}
	const epoch = 200 * time.Millisecond
	e := now.UnixNano() / int64(epoch)
	draw := v.noise.At("load", e)
	// A live session keeps scrcpy's receiver, the X server and the VNC
	// encoder busy even on a quiet screen; per-update encode cost comes
	// on top.
	load := 46 + 0.9*rate + draw.Normal(0, 5)
	// Keyframe/assembly bursts: occasional expensive segments push the
	// stack toward saturation — the paper's ">95 % in 10 % of samples".
	if draw.Bool(0.08) {
		load += 18
	}
	if load < 0 {
		load = 0
	}
	if load > 100 {
		load = 100
	}
	return load
}

// MemoryMB reports the mirroring stack's controller memory when live
// (tigervnc + noVNC + scrcpy receiver): the paper's "extra 6 %" of the
// Pi's 1 GB.
func (v *VNCServer) MemoryMB() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.active {
		return 0
	}
	return 62
}
