package mirror

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"batterylab/internal/device"
)

func guiRig(t *testing.T) (*rig, *Session, *httptest.Server) {
	t.Helper()
	r := newRig(t, 26)
	s := NewSession(r.dev, r.srv, 3)
	srv := httptest.NewServer(s.GUIHandler())
	t.Cleanup(srv.Close)
	return r, s, srv
}

func TestGUISessionEndpoint(t *testing.T) {
	_, s, srv := guiRig(t)
	resp, err := http.Get(srv.URL + "/api/session")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Device  string `json:"device"`
		Active  bool   `json:"active"`
		Clients int    `json:"clients"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Device != s.Device().Serial() || st.Active {
		t.Fatalf("state = %+v", st)
	}
}

func TestGUIInputRejectedWhenInactive(t *testing.T) {
	_, _, srv := guiRig(t)
	resp, err := http.Post(srv.URL+"/api/input", "application/json",
		strings.NewReader(`{"type":"tap","x":10,"y":20}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
}

func TestGUIInputFlowsToDevice(t *testing.T) {
	r, s, srv := guiRig(t)
	if err := s.Start(0); err != nil {
		t.Fatal(err)
	}
	app := &captureApp{pkg: "com.app"}
	r.dev.Install(app)
	r.dev.LaunchApp("com.app")

	for _, body := range []string{
		`{"type":"tap","x":10,"y":20}`,
		`{"type":"key","key":"KEYCODE_ENTER"}`,
		`{"type":"text","text":"bbc.com"}`,
		`{"type":"scroll","down":true}`,
	} {
		resp, err := http.Post(srv.URL+"/api/input", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("input %s: status %d", body, resp.StatusCode)
		}
	}
	if len(app.events) != 4 {
		t.Fatalf("events = %d, want 4", len(app.events))
	}
}

func TestGUIInputBadRequests(t *testing.T) {
	_, s, srv := guiRig(t)
	s.Start(0)
	resp, _ := http.Post(srv.URL+"/api/input", "application/json", strings.NewReader(`{"type":"dance"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/api/input", "application/json", strings.NewReader(`garbage`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/api/input")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET input: status %d", resp.StatusCode)
	}
}

func TestSessionBytesAndTrafficCohere(t *testing.T) {
	r, s, _ := guiRig(t)
	s.Start(0)
	r.dev.Framebuffer().SetActivity(30, 1)
	r.clk.Advance(5 * time.Second)
	sent := s.BytesSent()
	in, _ := s.VNC().Traffic()
	if sent == 0 || in != sent {
		t.Fatalf("agent sent %d, VNC saw %d", sent, in)
	}
}

type captureApp struct {
	pkg string

	mu     sync.Mutex
	events []device.InputEvent
}

func (c *captureApp) PackageName() string            { return c.pkg }
func (c *captureApp) Launch(*device.Device) error    { return nil }
func (c *captureApp) Stop(*device.Device) error      { return nil }
func (c *captureApp) ClearData(*device.Device) error { return nil }
func (c *captureApp) HandleInput(_ *device.Device, ev device.InputEvent) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	return nil
}

// Events returns a snapshot of delivered events.
func (c *captureApp) Events() []device.InputEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]device.InputEvent{}, c.events...)
}
