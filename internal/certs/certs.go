// Package certs implements BatteryLab's certificate workflow (§3.4): a
// certificate authority issues the wildcard *.batterylab.dev certificate
// every vantage point serves its noVNC GUI with, and the access server
// renews and redeploys it before expiry. The authority stands in for
// Let's Encrypt; issuance, verification and renewal use real crypto/x509
// machinery so the deployment jobs exercise genuine PEM plumbing.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// DefaultValidity matches Let's Encrypt's 90-day certificates.
const DefaultValidity = 90 * 24 * time.Hour

// RenewBefore is how far before expiry the renewal job re-issues.
const RenewBefore = 30 * 24 * time.Hour

// CA is a certificate authority.
type CA struct {
	key  *ecdsa.PrivateKey
	cert *x509.Certificate
	// serial increments per issued certificate.
	serial int64
}

// NewCA creates a self-signed authority valid for ten years from now.
func NewCA(commonName string, now time.Time) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{key: key, cert: cert, serial: 1}, nil
}

// CertPEM returns the CA certificate in PEM form (the trust root vantage
// points pin).
func (ca *CA) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.cert.Raw})
}

// Certificate is an issued leaf with its key.
type Certificate struct {
	CertPEM []byte
	KeyPEM  []byte
	Leaf    *x509.Certificate
}

// IssueWildcard issues a certificate for *.domain and domain itself,
// valid from now for validity (DefaultValidity if zero).
func (ca *CA) IssueWildcard(domain string, validity time.Duration, now time.Time) (*Certificate, error) {
	if domain == "" {
		return nil, errors.New("certs: empty domain")
	}
	if validity == 0 {
		validity = DefaultValidity
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	ca.serial++
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject:      pkix.Name{CommonName: "*." + domain},
		DNSNames:     []string{"*." + domain, domain},
		NotBefore:    now.Add(-5 * time.Minute),
		NotAfter:     now.Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("certs: issuing for %s: %w", domain, err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, err
	}
	return &Certificate{
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
		Leaf:    leaf,
	}, nil
}

// ParseCertPEM decodes a PEM leaf.
func ParseCertPEM(certPEM []byte) (*x509.Certificate, error) {
	block, _ := pem.Decode(certPEM)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("certs: no CERTIFICATE block")
	}
	return x509.ParseCertificate(block.Bytes)
}

// Verify checks that certPEM chains to rootPEM, covers dnsName and is
// valid at now.
func Verify(certPEM, rootPEM []byte, dnsName string, now time.Time) error {
	leaf, err := ParseCertPEM(certPEM)
	if err != nil {
		return err
	}
	roots := x509.NewCertPool()
	if !roots.AppendCertsFromPEM(rootPEM) {
		return errors.New("certs: bad root PEM")
	}
	_, err = leaf.Verify(x509.VerifyOptions{
		Roots:       roots,
		DNSName:     dnsName,
		CurrentTime: now,
	})
	return err
}

// NeedsRenewal reports whether the certificate expires within RenewBefore
// of now — the access server's renewal-job predicate.
func NeedsRenewal(leaf *x509.Certificate, now time.Time) bool {
	return now.Add(RenewBefore).After(leaf.NotAfter)
}
