package certs

import (
	"testing"
	"time"
)

var t0 = time.Date(2019, 11, 13, 9, 0, 0, 0, time.UTC)

func newCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("BatteryLab Root", t0)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerifyWildcard(t *testing.T) {
	ca := newCA(t)
	cert, err := ca.IssueWildcard("batterylab.dev", 0, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"node1.batterylab.dev", "node42.batterylab.dev", "batterylab.dev"} {
		if err := Verify(cert.CertPEM, ca.CertPEM(), name, t0.Add(24*time.Hour)); err != nil {
			t.Fatalf("verify %s: %v", name, err)
		}
	}
}

func TestVerifyWrongName(t *testing.T) {
	ca := newCA(t)
	cert, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if err := Verify(cert.CertPEM, ca.CertPEM(), "evil.example.com", t0); err == nil {
		t.Fatal("wrong DNS name verified")
	}
	// Wildcards only cover one label.
	if err := Verify(cert.CertPEM, ca.CertPEM(), "a.b.batterylab.dev", t0); err == nil {
		t.Fatal("multi-label wildcard verified")
	}
}

func TestVerifyExpired(t *testing.T) {
	ca := newCA(t)
	cert, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if err := Verify(cert.CertPEM, ca.CertPEM(), "node1.batterylab.dev", t0.Add(91*24*time.Hour)); err == nil {
		t.Fatal("expired cert verified")
	}
}

func TestVerifyWrongRoot(t *testing.T) {
	ca := newCA(t)
	other := newCA(t)
	cert, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if err := Verify(cert.CertPEM, other.CertPEM(), "node1.batterylab.dev", t0); err == nil {
		t.Fatal("cert verified against wrong root")
	}
}

func TestNeedsRenewal(t *testing.T) {
	ca := newCA(t)
	cert, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if NeedsRenewal(cert.Leaf, t0) {
		t.Fatal("fresh cert needs renewal")
	}
	if !NeedsRenewal(cert.Leaf, t0.Add(61*24*time.Hour)) {
		t.Fatal("cert 29 days from expiry does not need renewal")
	}
}

func TestSerialIncrements(t *testing.T) {
	ca := newCA(t)
	a, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	b, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if a.Leaf.SerialNumber.Cmp(b.Leaf.SerialNumber) == 0 {
		t.Fatal("serials collide")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseCertPEM([]byte("not pem")); err == nil {
		t.Fatal("garbage parsed")
	}
	ca := newCA(t)
	cert, _ := ca.IssueWildcard("x.dev", 0, t0)
	if err := Verify(cert.CertPEM, []byte("junk"), "a.x.dev", t0); err == nil {
		t.Fatal("junk root accepted")
	}
	if _, err := ca.IssueWildcard("", 0, t0); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestKeyPEMPresent(t *testing.T) {
	ca := newCA(t)
	cert, _ := ca.IssueWildcard("batterylab.dev", 0, t0)
	if len(cert.KeyPEM) == 0 {
		t.Fatal("no key PEM")
	}
}
