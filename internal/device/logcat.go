package device

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"batterylab/internal/simclock"
)

// Level is a logcat priority.
type Level int

// Log levels, matching logcat's V/D/I/W/E.
const (
	Verbose Level = iota
	Debug
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Verbose:
		return "V"
	case Debug:
		return "D"
	case Info:
		return "I"
	case Warn:
		return "W"
	default:
		return "E"
	}
}

// Entry is one log line.
type Entry struct {
	T     time.Time
	Tag   string
	Level Level
	Msg   string
}

// Format renders the entry in logcat's "time" format.
func (e Entry) Format() string {
	return fmt.Sprintf("%s %s/%s: %s", e.T.Format("01-02 15:04:05.000"), e.Level, e.Tag, e.Msg)
}

// Logcat is a bounded ring buffer of log entries, the backing store for
// the `adb logcat` surface experiments request via execute_adb.
type Logcat struct {
	clock simclock.Clock
	max   int

	mu      sync.Mutex
	entries []Entry
}

// NewLogcat returns a buffer retaining at most max entries.
func NewLogcat(clock simclock.Clock, max int) *Logcat {
	if max < 1 {
		max = 1
	}
	return &Logcat{clock: clock, max: max}
}

// Append adds an entry stamped with the current time.
func (l *Logcat) Append(tag string, level Level, msg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, Entry{T: l.clock.Now(), Tag: tag, Level: level, Msg: msg})
	if len(l.entries) > l.max {
		l.entries = l.entries[len(l.entries)-l.max:]
	}
}

// Dump returns all buffered entries.
func (l *Logcat) Dump() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry{}, l.entries...)
}

// DumpText renders the buffer as logcat text output.
func (l *Logcat) DumpText() string {
	var b strings.Builder
	for _, e := range l.Dump() {
		b.WriteString(e.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// Clear empties the buffer (logcat -c).
func (l *Logcat) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
}

// Len reports the number of buffered entries.
func (l *Logcat) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
