package device

import (
	"sync"
	"time"

	"batterylab/internal/power"
)

// Framebuffer tracks display pipeline activity: how many frames per
// second actually change and what fraction of pixels each change touches.
// The screen-mirroring agent (internal/mirror) reads this to decide how
// much it must encode — the paper's observation that the encoder load
// rises "when the screen content changes quickly versus the fixed phone's
// home screen" falls out of this coupling.
//
// The framebuffer also owns the hardware video decoder block, lit during
// mp4 playback.
type Framebuffer struct {
	mu         sync.Mutex
	fps        float64 // changed frames per second [0, 60]
	changeFrac float64 // fraction of pixels changing per changed frame [0, 1]

	decoder *power.Switched
}

func newFramebuffer() *Framebuffer {
	fb := &Framebuffer{}
	fb.decoder = power.NewSwitched("video-decoder", power.SourceFunc(func(time.Time) float64 {
		return 18 // hardware H.264 decode block
	}))
	return fb
}

// SetActivity declares the display change rate: fps changed frames per
// second, each touching changeFrac of the screen. Values are clamped to
// valid ranges.
func (fb *Framebuffer) SetActivity(fps, changeFrac float64) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.fps = clamp(fps, 0, 60)
	fb.changeFrac = clamp(changeFrac, 0, 1)
}

// Activity reports the current change rate.
func (fb *Framebuffer) Activity() (fps, changeFrac float64) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.fps, fb.changeFrac
}

// UpdateRate reports the effective full-frame-equivalents per second:
// fps × changeFrac. A paused video reports 0; 30 fps full-screen video
// reports 30.
func (fb *Framebuffer) UpdateRate() float64 {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.fps * fb.changeFrac
}

// Decoder exposes the hardware decode block's gate (the video app turns
// it on while playing).
func (fb *Framebuffer) Decoder() *power.Switched { return fb.decoder }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
