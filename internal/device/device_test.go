package device

import (
	"math"
	"strings"
	"testing"
	"time"

	"batterylab/internal/simclock"
)

func newDev(t *testing.T) (*Device, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual()
	d, err := New(clk, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d, clk
}

func TestDefaults(t *testing.T) {
	d, _ := newDev(t)
	cfg := d.Config()
	if cfg.Model != "Samsung J7 Duo" || cfg.APILevel != 26 || cfg.Cores != 8 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if d.Battery().CapacityMAH() != 3000 {
		t.Fatal("battery default wrong")
	}
	if !d.Booted() {
		t.Fatal("device should boot on New")
	}
	if d.Path() != PathBattery {
		t.Fatalf("path = %v, want battery", d.Path())
	}
}

func TestIdleCurrentRange(t *testing.T) {
	d, clk := newDev(t)
	// Booted, screen on at 0.5 brightness, idle: base 24 + screen 90 +
	// cpu ~25 + radios ~5 + ripple ~4 — expect roughly 120-180 mA.
	var sum float64
	const n = 50
	for i := 0; i < n; i++ {
		clk.Advance(100 * time.Millisecond)
		sum += d.CurrentMA(clk.Now())
	}
	avg := sum / n
	if avg < 110 || avg > 190 {
		t.Fatalf("idle draw = %.1f mA, want 110-190", avg)
	}
}

func TestScreenOffReducesDraw(t *testing.T) {
	d, clk := newDev(t)
	on := d.CurrentMA(clk.Now())
	d.Screen().SetOn(false)
	off := d.CurrentMA(clk.Now())
	if on-off < 60 {
		t.Fatalf("screen gate too small: on=%.1f off=%.1f", on, off)
	}
}

func TestShutdownZeroesDraw(t *testing.T) {
	d, clk := newDev(t)
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := d.CurrentMA(clk.Now()); got != 0 {
		t.Fatalf("draw after shutdown = %v", got)
	}
	if err := d.Shutdown(); err == nil {
		t.Fatal("double shutdown accepted")
	}
	if len(d.CPU().Processes()) != 0 {
		t.Fatal("processes survive shutdown")
	}
}

func TestBootRequiresPower(t *testing.T) {
	d, _ := newDev(t)
	d.Shutdown()
	d.Battery().Detach()
	d.SetRelayPosition(true) // battery position but battery detached
	if err := d.Boot(); err == nil {
		t.Fatal("boot without power accepted")
	}
	d.Battery().Attach()
	d.SetRelayPosition(true)
	if err := d.Boot(); err != nil {
		t.Fatal(err)
	}
}

func TestRelayBypassPowersDevice(t *testing.T) {
	d, _ := newDev(t)
	d.Battery().Detach()
	d.SetRelayPosition(false) // bypass: monitor supplies
	if d.Path() != PathMonitor {
		t.Fatalf("path = %v, want monitor", d.Path())
	}
	if !d.Booted() {
		t.Fatal("device lost power during seamless bypass switch")
	}
}

func TestPowerLossShutsDown(t *testing.T) {
	d, _ := newDev(t)
	d.Battery().Detach()
	d.SetRelayPosition(true) // battery position, no battery, no USB
	if d.Booted() {
		t.Fatal("device survived power loss")
	}
	if d.Path() != PathNone {
		t.Fatalf("path = %v", d.Path())
	}
}

func TestUSBPathPreferred(t *testing.T) {
	d, _ := newDev(t)
	d.USBPowerChanged(true)
	if d.Path() != PathUSB {
		t.Fatalf("path = %v, want usb", d.Path())
	}
	d.USBPowerChanged(false)
	if d.Path() != PathBattery {
		t.Fatalf("path = %v, want battery", d.Path())
	}
}

func TestUSBObservedDistortsReading(t *testing.T) {
	d, clk := newDev(t)
	obs := d.USBObservedSource()
	if got := obs.CurrentMA(clk.Now()); got != 0 {
		t.Fatalf("USB-observed without USB = %v", got)
	}
	d.USBPowerChanged(true)
	true_ := d.CurrentMA(clk.Now())
	seen := obs.CurrentMA(clk.Now())
	if math.Abs(seen-true_) < 0.1*true_ {
		t.Fatalf("USB observation should be distorted: true=%.1f seen=%.1f", true_, seen)
	}
}

func TestBatteryDrainsOverTime(t *testing.T) {
	d, clk := newDev(t)
	before := d.Battery().ChargeMAH()
	clk.Advance(10 * time.Minute)
	after := d.Battery().ChargeMAH()
	drained := before - after
	// ~150 mA for 1/6 h ≈ 25 mAh.
	if drained < 10 || drained > 60 {
		t.Fatalf("drained %.1f mAh in 10 min, want 10-60", drained)
	}
}

func TestNoDrainOnBypass(t *testing.T) {
	d, clk := newDev(t)
	d.SetRelayPosition(false)
	before := d.Battery().ChargeMAH()
	clk.Advance(10 * time.Minute)
	if got := d.Battery().ChargeMAH(); got != before {
		t.Fatalf("battery drained %.2f mAh while bypassed", before-got)
	}
}

func TestCPUProcessLifecycle(t *testing.T) {
	d, clk := newDev(t)
	p := d.CPU().StartProcess("com.example.app")
	p.SetLoad(40, 2)
	clk.Advance(time.Second)
	util := d.CPU().UtilAt(clk.Now())
	if util < 30 || util > 55 {
		t.Fatalf("util = %.1f, want ~40+system", util)
	}
	if err := d.CPU().Kill(p.PID()); err != nil {
		t.Fatal(err)
	}
	if err := d.CPU().Kill(p.PID()); err == nil {
		t.Fatal("double kill accepted")
	}
}

func TestCPUUtilClamped(t *testing.T) {
	d, clk := newDev(t)
	for i := 0; i < 5; i++ {
		d.CPU().StartProcess("burn").SetLoad(60, 1)
	}
	clk.Advance(time.Second)
	if util := d.CPU().UtilAt(clk.Now()); util > 100 {
		t.Fatalf("util = %v > 100", util)
	}
}

func TestCPUUtilStableWithinEpoch(t *testing.T) {
	d, clk := newDev(t)
	p := d.CPU().StartProcess("x")
	p.SetLoad(30, 5)
	clk.Advance(time.Second)
	now := clk.Now()
	a := d.CPU().UtilAt(now)
	b := d.CPU().UtilAt(now)
	if a != b {
		t.Fatalf("same-instant samples differ: %v vs %v", a, b)
	}
}

func TestKillByName(t *testing.T) {
	d, _ := newDev(t)
	d.CPU().StartProcess("dup")
	d.CPU().StartProcess("dup")
	if n := d.CPU().KillByName("dup"); n != 2 {
		t.Fatalf("killed %d, want 2", n)
	}
	if d.CPU().FindProcess("dup") != nil {
		t.Fatal("process survived KillByName")
	}
}

func TestStoragePushPull(t *testing.T) {
	d, _ := newDev(t)
	if err := d.Storage().Push("/sdcard/video.mp4", []byte("mp4data")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Storage().Pull("/sdcard/video.mp4")
	if err != nil || string(got) != "mp4data" {
		t.Fatalf("Pull = %q, %v", got, err)
	}
	if _, err := d.Storage().Pull("/nope"); err == nil {
		t.Fatal("Pull missing file accepted")
	}
	list := d.Storage().List("/sdcard/")
	if len(list) != 1 || list[0] != "/sdcard/video.mp4" {
		t.Fatalf("List = %v", list)
	}
	if err := d.Storage().Delete("/sdcard/video.mp4"); err != nil {
		t.Fatal(err)
	}
	if err := d.Storage().Delete("/sdcard/video.mp4"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestRadioTransferCounters(t *testing.T) {
	d, clk := newDev(t)
	w := d.WiFi()
	dur := w.Transfer(1_000_000, 8, false) // 1 MB at 8 Mbps = 1 s
	if math.Abs(dur.Seconds()-1.0) > 0.01 {
		t.Fatalf("transfer duration = %v, want ~1s", dur)
	}
	if w.State() != RadioActive {
		t.Fatal("radio not active during transfer")
	}
	clk.Advance(2 * time.Second)
	if w.State() != RadioIdle {
		t.Fatal("radio still active after transfer")
	}
	tx, rx := w.Counters()
	if tx != 0 || rx != 1_000_000 {
		t.Fatalf("counters = %d, %d", tx, rx)
	}
}

func TestRadioOffNoTransfer(t *testing.T) {
	d, _ := newDev(t)
	d.Cellular().SetState(RadioOff)
	if dur := d.Cellular().Transfer(1000, 10, true); dur != 0 {
		t.Fatal("transfer on off radio moved bytes")
	}
}

func TestRadioActiveDrawScalesWithRate(t *testing.T) {
	d, clk := newDev(t)
	w := d.WiFi()
	w.Transfer(10_000_000, 5, false)
	slow := w.CurrentMA(clk.Now())
	d2, clk2 := newDev(t)
	d2.WiFi().Transfer(10_000_000, 20, false)
	fast := d2.WiFi().CurrentMA(clk2.Now())
	if fast <= slow {
		t.Fatalf("draw should grow with rate: %v (5 Mbps) vs %v (20 Mbps)", slow, fast)
	}
}

func TestRadioSerialization(t *testing.T) {
	d, _ := newDev(t)
	w := d.WiFi()
	d1 := w.Transfer(1_000_000, 8, false)
	d2 := w.Transfer(1_000_000, 8, false)
	if d2 <= d1 {
		t.Fatalf("second transfer should queue behind first: %v then %v", d1, d2)
	}
}

func TestLogcat(t *testing.T) {
	d, _ := newDev(t)
	d.Logcat().Clear()
	d.Logcat().Append("Test", Info, "hello")
	if d.Logcat().Len() != 1 {
		t.Fatal("append failed")
	}
	txt := d.Logcat().DumpText()
	if !strings.Contains(txt, "I/Test: hello") {
		t.Fatalf("logcat text = %q", txt)
	}
}

func TestLogcatRing(t *testing.T) {
	clk := simclock.NewVirtual()
	lc := NewLogcat(clk, 3)
	for i := 0; i < 10; i++ {
		lc.Append("t", Debug, "m")
	}
	if lc.Len() != 3 {
		t.Fatalf("ring retained %d, want 3", lc.Len())
	}
}

func TestDumpsysBattery(t *testing.T) {
	d, _ := newDev(t)
	out, err := d.Dumpsys("battery")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "level: 100") || !strings.Contains(out, "Li-ion") {
		t.Fatalf("dumpsys battery = %q", out)
	}
	if _, err := d.Dumpsys("nosuch"); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestDumpsysCPUListsProcesses(t *testing.T) {
	d, _ := newDev(t)
	out, err := d.Dumpsys("cpuinfo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "system_server") {
		t.Fatalf("dumpsys cpuinfo = %q", out)
	}
}

func TestFramebufferActivity(t *testing.T) {
	d, _ := newDev(t)
	fb := d.Framebuffer()
	fb.SetActivity(30, 1)
	if fb.UpdateRate() != 30 {
		t.Fatalf("update rate = %v", fb.UpdateRate())
	}
	fb.SetActivity(100, 5) // clamped
	fps, frac := fb.Activity()
	if fps != 60 || frac != 1 {
		t.Fatalf("clamp failed: %v, %v", fps, frac)
	}
}

func TestFactoryReset(t *testing.T) {
	d, _ := newDev(t)
	d.Storage().Push("/sdcard/x", []byte("1"))
	d.Install(&stubApp{pkg: "com.x"})
	boots := d.BootCount()
	if err := d.FactoryReset(); err != nil {
		t.Fatal(err)
	}
	if d.Storage().Exists("/sdcard/x") {
		t.Fatal("storage survived factory reset")
	}
	if len(d.Packages()) != 0 {
		t.Fatal("apps survived factory reset")
	}
	if d.BootCount() != boots+1 {
		t.Fatal("factory reset should reboot")
	}
	if !d.Booted() {
		t.Fatal("device off after factory reset")
	}
}
