package device

import (
	"fmt"
	"sort"
	"sync"
)

// Storage models the device's user-visible filesystem (the sdcard): the
// place experiments push workload media (the Fig. 2 mp4) and pull logs
// from. Paths are flat slash-separated names; no directory objects are
// modelled beyond prefix listing.
type Storage struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewStorage returns an empty filesystem.
func NewStorage() *Storage {
	return &Storage{files: make(map[string][]byte)}
}

// Push writes a file (adb push).
func (s *Storage) Push(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("storage: empty path")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.files[path] = cp
	return nil
}

// Pull reads a file (adb pull).
func (s *Storage) Pull(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no such file", path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether path is present.
func (s *Storage) Exists(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[path]
	return ok
}

// Delete removes a file (rm). Removing a missing file is an error, like rm.
func (s *Storage) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("storage: %s: no such file", path)
	}
	delete(s.files, path)
	return nil
}

// List returns paths with the given prefix, sorted.
func (s *Storage) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for p := range s.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Wipe clears everything (factory reset).
func (s *Storage) Wipe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files = make(map[string][]byte)
}

// UsedBytes reports total stored bytes.
func (s *Storage) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.files {
		n += int64(len(d))
	}
	return n
}
