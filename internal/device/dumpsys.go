package device

import (
	"fmt"
	"strings"
)

// Dumpsys renders diagnostic text for the named service, mimicking the
// `adb shell dumpsys <service>` surfaces the paper's experiments collect
// (battery level, CPU, memory). Unknown services return an error like the
// real tool.
func (d *Device) Dumpsys(service string) (string, error) {
	switch service {
	case "battery":
		return d.dumpsysBattery(), nil
	case "cpuinfo":
		return d.dumpsysCPU(), nil
	case "meminfo":
		return d.dumpsysMem(), nil
	case "power":
		return d.dumpsysPower(), nil
	default:
		return "", fmt.Errorf("dumpsys: can't find service: %s", service)
	}
}

func (d *Device) dumpsysBattery() string {
	var b strings.Builder
	b.WriteString("Current Battery Service state:\n")
	usb := d.Path() == PathUSB
	fmt.Fprintf(&b, "  AC powered: false\n")
	fmt.Fprintf(&b, "  USB powered: %v\n", usb)
	fmt.Fprintf(&b, "  level: %d\n", int(d.batt.SoC()*100+0.5))
	fmt.Fprintf(&b, "  scale: 100\n")
	fmt.Fprintf(&b, "  voltage: %d\n", int(d.batt.VoltageV()*1000))
	fmt.Fprintf(&b, "  temperature: 270\n")
	fmt.Fprintf(&b, "  technology: Li-ion\n")
	return b.String()
}

func (d *Device) dumpsysCPU() string {
	now := d.clock.Now()
	var b strings.Builder
	total := d.cpu.UtilAt(now)
	fmt.Fprintf(&b, "Load: %.1f%% TOTAL across %d cores\n", total, d.cpu.Cores())
	for _, p := range d.cpu.Processes() {
		fmt.Fprintf(&b, "  %5.1f%% %d/%s\n", p.utilAt(now), p.PID(), p.Name())
	}
	return b.String()
}

func (d *Device) dumpsysMem() string {
	var b strings.Builder
	b.WriteString("Applications Memory Usage (in Kilobytes):\n")
	var total float64
	for _, p := range d.cpu.Processes() {
		fmt.Fprintf(&b, "  %8.0fK: %s (pid %d)\n", p.MemMB()*1024, p.Name(), p.PID())
		total += p.MemMB()
	}
	fmt.Fprintf(&b, "Total RSS: %.0fK\n", total*1024)
	return b.String()
}

func (d *Device) dumpsysPower() string {
	var b strings.Builder
	b.WriteString("POWER MANAGER (dumpsys power)\n")
	fmt.Fprintf(&b, "  Display Power: state=%v\n", map[bool]string{true: "ON", false: "OFF"}[d.screen.On()])
	fmt.Fprintf(&b, "  Supply path: %v\n", d.Path())
	fmt.Fprintf(&b, "  Instantaneous draw: %.1f mA\n", d.CurrentMA(d.clock.Now()))
	return b.String()
}
