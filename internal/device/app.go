package device

import (
	"fmt"
	"sort"
)

// App is an installed application model. Workload apps (the browsers in
// internal/browser, the video player in internal/video) implement this
// interface and manipulate the device's components — processes, radios,
// framebuffer — to reproduce their power footprint.
type App interface {
	// PackageName is the Android package id, e.g. "com.brave.browser".
	PackageName() string
	// Launch brings the app to the foreground, spawning its processes.
	Launch(d *Device) error
	// Stop force-stops the app, killing its processes.
	Stop(d *Device) error
	// ClearData resets app state (pm clear): caches, sign-in, first-run
	// dialogs.
	ClearData(d *Device) error
	// HandleInput delivers a user input event while foregrounded.
	HandleInput(d *Device, ev InputEvent) error
}

// InputKind classifies input events.
type InputKind int

// Input kinds, covering what `adb shell input` and a Bluetooth HID
// keyboard can deliver.
const (
	InputTap InputKind = iota
	InputKey
	InputText
	InputScroll
)

func (k InputKind) String() string {
	switch k {
	case InputTap:
		return "tap"
	case InputKey:
		return "key"
	case InputText:
		return "text"
	default:
		return "scroll"
	}
}

// InputEvent is one user interaction.
type InputEvent struct {
	Kind InputKind
	X, Y int    // tap coordinates
	Key  string // key name (KEYCODE_ENTER, ...)
	Text string // text payload
	// ScrollDown is the scroll direction when Kind == InputScroll.
	ScrollDown bool
}

// Install registers an app on the device.
func (d *Device) Install(app App) error {
	if app == nil {
		return fmt.Errorf("device: nil app")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pkg := app.PackageName()
	if _, dup := d.apps[pkg]; dup {
		return fmt.Errorf("device: package %s already installed", pkg)
	}
	d.apps[pkg] = app
	d.logcat.Append("PackageManager", Info, "installed "+pkg)
	return nil
}

// Uninstall removes an app, stopping it first if foregrounded.
func (d *Device) Uninstall(pkg string) error {
	d.mu.Lock()
	app, ok := d.apps[pkg]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("device: package %s not installed", pkg)
	}
	fg := d.foreground == pkg
	delete(d.apps, pkg)
	if fg {
		d.foreground = ""
	}
	d.mu.Unlock()
	if fg {
		if err := app.Stop(d); err != nil {
			return err
		}
	}
	d.logcat.Append("PackageManager", Info, "uninstalled "+pkg)
	return nil
}

// Packages lists installed package names, sorted.
func (d *Device) Packages() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.apps))
	for pkg := range d.apps {
		out = append(out, pkg)
	}
	sort.Strings(out)
	return out
}

// LaunchApp foregrounds pkg (am start). Any previous foreground app is
// stopped first — the workload scripts drive one app at a time.
func (d *Device) LaunchApp(pkg string) error {
	d.mu.Lock()
	if !d.booted {
		d.mu.Unlock()
		return fmt.Errorf("device: not booted")
	}
	app, ok := d.apps[pkg]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("device: package %s not installed", pkg)
	}
	prevPkg := d.foreground
	var prev App
	if prevPkg != "" && prevPkg != pkg {
		prev = d.apps[prevPkg]
	}
	d.mu.Unlock()

	if prev != nil {
		if err := prev.Stop(d); err != nil {
			return fmt.Errorf("device: stopping %s: %w", prevPkg, err)
		}
	}
	if err := app.Launch(d); err != nil {
		return err
	}
	d.mu.Lock()
	d.foreground = pkg
	d.mu.Unlock()
	d.logcat.Append("ActivityManager", Info, "START "+pkg)
	return nil
}

// StopApp force-stops pkg (am force-stop).
func (d *Device) StopApp(pkg string) error {
	d.mu.Lock()
	app, ok := d.apps[pkg]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("device: package %s not installed", pkg)
	}
	if d.foreground == pkg {
		d.foreground = ""
	}
	d.mu.Unlock()
	if err := app.Stop(d); err != nil {
		return err
	}
	d.logcat.Append("ActivityManager", Info, "force-stop "+pkg)
	return nil
}

// ClearAppData resets pkg's state (pm clear).
func (d *Device) ClearAppData(pkg string) error {
	d.mu.Lock()
	app, ok := d.apps[pkg]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("device: package %s not installed", pkg)
	}
	return app.ClearData(d)
}

// Foreground reports the foreground package, or "".
func (d *Device) Foreground() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.foreground
}

// Input delivers a user event to the foreground app. Events on a dark
// screen wake it instead (Android behaviour).
func (d *Device) Input(ev InputEvent) error {
	d.mu.Lock()
	if !d.booted {
		d.mu.Unlock()
		return fmt.Errorf("device: not booted")
	}
	fgPkg := d.foreground
	app := d.apps[fgPkg]
	d.mu.Unlock()

	if !d.screen.On() {
		d.screen.SetOn(true)
		d.logcat.Append("input", Debug, "wake")
		return nil
	}
	if app == nil {
		d.logcat.Append("input", Debug, "event on launcher: "+ev.Kind.String())
		return nil
	}
	return app.HandleInput(d, ev)
}

// FactoryReset wipes storage, uninstalls all apps and reboots — the
// maintenance job the access server runs between experimenters.
func (d *Device) FactoryReset() error {
	d.mu.Lock()
	booted := d.booted
	d.apps = make(map[string]App)
	d.foreground = ""
	d.mu.Unlock()
	d.store.Wipe()
	d.logcat.Clear()
	if booted {
		if err := d.Shutdown(); err != nil {
			return err
		}
	}
	return d.Boot()
}
