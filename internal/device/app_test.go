package device

import (
	"testing"
)

// stubApp is a minimal App for lifecycle tests.
type stubApp struct {
	pkg      string
	launched int
	stopped  int
	cleared  int
	inputs   []InputEvent
}

func (s *stubApp) PackageName() string { return s.pkg }
func (s *stubApp) Launch(d *Device) error {
	s.launched++
	return nil
}
func (s *stubApp) Stop(d *Device) error {
	s.stopped++
	return nil
}
func (s *stubApp) ClearData(d *Device) error {
	s.cleared++
	return nil
}
func (s *stubApp) HandleInput(d *Device, ev InputEvent) error {
	s.inputs = append(s.inputs, ev)
	return nil
}

func TestInstallLaunchStop(t *testing.T) {
	d, _ := newDev(t)
	app := &stubApp{pkg: "com.example"}
	if err := d.Install(app); err != nil {
		t.Fatal(err)
	}
	if err := d.Install(app); err == nil {
		t.Fatal("duplicate install accepted")
	}
	if err := d.LaunchApp("com.example"); err != nil {
		t.Fatal(err)
	}
	if d.Foreground() != "com.example" || app.launched != 1 {
		t.Fatal("launch state wrong")
	}
	if err := d.StopApp("com.example"); err != nil {
		t.Fatal(err)
	}
	if d.Foreground() != "" || app.stopped != 1 {
		t.Fatal("stop state wrong")
	}
}

func TestLaunchUnknown(t *testing.T) {
	d, _ := newDev(t)
	if err := d.LaunchApp("com.none"); err == nil {
		t.Fatal("launching missing app accepted")
	}
}

func TestLaunchSwitchStopsPrevious(t *testing.T) {
	d, _ := newDev(t)
	a := &stubApp{pkg: "a"}
	b := &stubApp{pkg: "b"}
	d.Install(a)
	d.Install(b)
	d.LaunchApp("a")
	d.LaunchApp("b")
	if a.stopped != 1 {
		t.Fatal("previous foreground app not stopped")
	}
	if d.Foreground() != "b" {
		t.Fatal("foreground wrong")
	}
}

func TestInputRoutesToForeground(t *testing.T) {
	d, _ := newDev(t)
	app := &stubApp{pkg: "a"}
	d.Install(app)
	d.LaunchApp("a")
	ev := InputEvent{Kind: InputScroll, ScrollDown: true}
	if err := d.Input(ev); err != nil {
		t.Fatal(err)
	}
	if len(app.inputs) != 1 || app.inputs[0].Kind != InputScroll {
		t.Fatalf("inputs = %+v", app.inputs)
	}
}

func TestInputWakesDarkScreen(t *testing.T) {
	d, _ := newDev(t)
	app := &stubApp{pkg: "a"}
	d.Install(app)
	d.LaunchApp("a")
	d.Screen().SetOn(false)
	d.Input(InputEvent{Kind: InputTap})
	if !d.Screen().On() {
		t.Fatal("input did not wake screen")
	}
	if len(app.inputs) != 0 {
		t.Fatal("wake event leaked to app")
	}
}

func TestInputNotBooted(t *testing.T) {
	d, _ := newDev(t)
	d.Shutdown()
	if err := d.Input(InputEvent{Kind: InputTap}); err == nil {
		t.Fatal("input on powered-off device accepted")
	}
}

func TestClearAppData(t *testing.T) {
	d, _ := newDev(t)
	app := &stubApp{pkg: "a"}
	d.Install(app)
	if err := d.ClearAppData("a"); err != nil {
		t.Fatal(err)
	}
	if app.cleared != 1 {
		t.Fatal("ClearData not delegated")
	}
	if err := d.ClearAppData("zz"); err == nil {
		t.Fatal("clear of missing package accepted")
	}
}

func TestUninstallForeground(t *testing.T) {
	d, _ := newDev(t)
	app := &stubApp{pkg: "a"}
	d.Install(app)
	d.LaunchApp("a")
	if err := d.Uninstall("a"); err != nil {
		t.Fatal(err)
	}
	if d.Foreground() != "" || app.stopped != 1 {
		t.Fatal("uninstall of foreground app did not stop it")
	}
	if err := d.Uninstall("a"); err == nil {
		t.Fatal("double uninstall accepted")
	}
}

func TestInstallNil(t *testing.T) {
	d, _ := newDev(t)
	if err := d.Install(nil); err == nil {
		t.Fatal("nil install accepted")
	}
}
