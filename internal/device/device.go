// Package device models an Android test device — the phone wired into a
// BatteryLab vantage point. The model is component-based: a CPU with a
// process table, a screen, WiFi/cellular/Bluetooth radios, hardware codec
// blocks, storage, and a framebuffer whose change rate drives the screen
// mirroring encoder. Each component contributes to a power rail
// (internal/power) that the Monsoon model samples.
//
// The device draws from one supply path at a time: its removable battery,
// the power monitor's Vout (via the relay's battery bypass), or USB VBUS.
// The USB path is special: it keeps the device powered during setup but
// corrupts monitor readings, which is why BatteryLab automates over
// WiFi/Bluetooth during measurements (§3.3).
package device

import (
	"fmt"
	"sync"
	"time"

	"batterylab/internal/battery"
	"batterylab/internal/power"
	"batterylab/internal/rng"
	"batterylab/internal/simclock"
)

// PowerPath identifies the active supply.
type PowerPath int

// Supply paths.
const (
	// PathNone means the device has no supply and is off.
	PathNone PowerPath = iota
	// PathBattery draws from the device's own battery.
	PathBattery
	// PathMonitor draws from the power monitor through the bypass.
	PathMonitor
	// PathUSB draws from USB VBUS.
	PathUSB
)

func (p PowerPath) String() string {
	switch p {
	case PathBattery:
		return "battery"
	case PathMonitor:
		return "monitor"
	case PathUSB:
		return "usb"
	default:
		return "none"
	}
}

// Config describes a test device.
type Config struct {
	Model    string // e.g. "Samsung J7 Duo"
	Serial   string // ADB serial
	OS       string // "android" (iOS is future work, as in the paper)
	APILevel int    // Android API level; mirroring needs >= 21
	Cores    int    // CPU core count
	Rooted   bool   // required for ADB-over-Bluetooth
	Battery  battery.Config
	Seed     uint64
}

// Default fills zero fields with the paper's first vantage point device, a
// Samsung J7 Duo running Android 8.0.
func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = "Samsung J7 Duo"
	}
	if c.Serial == "" {
		c.Serial = "J7DUO000001"
	}
	if c.OS == "" {
		c.OS = "android"
	}
	if c.APILevel == 0 {
		c.APILevel = 26 // Android 8.0
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.Battery.CapacityMAH == 0 {
		c.Battery.CapacityMAH = 3000
	}
	if c.Battery.NominalVoltage == 0 {
		c.Battery.NominalVoltage = 3.85
	}
	return c
}

// Device is a simulated phone. All methods are safe for concurrent use.
type Device struct {
	cfg   Config
	clock simclock.Clock
	rnd   *rng.RNG

	batt   *battery.Battery
	rail   *power.Rail
	cpu    *CPU
	screen *Screen
	wifi   *Radio
	cell   *Radio
	bt     *Radio
	store  *Storage
	logcat *Logcat
	fb     *Framebuffer

	mu          sync.Mutex
	booted      bool
	path        PowerPath
	usbPowered  bool
	batteryPath bool // relay at battery position (vs monitor bypass)
	// monitorSupply tracks whether the monitor's Vout is actually live;
	// a bypassed device with a dead monitor has no power at all. The
	// vantage point wires this to the socket and Vout state; bare
	// devices default to a live bench supply.
	monitorSupply bool
	apps          map[string]App
	foreground    string
	drain         *simclock.Ticker
	bootCount     int
}

// New builds a device from cfg. The device starts powered by its battery
// and booted.
func New(clock simclock.Clock, cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	batt, err := battery.New(cfg.Battery)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", cfg.Serial, err)
	}
	d := &Device{
		cfg:           cfg,
		clock:         clock,
		rnd:           rng.New(cfg.Seed).Fork("device/" + cfg.Serial),
		batt:          batt,
		rail:          power.NewRail(),
		store:         NewStorage(),
		logcat:        NewLogcat(clock, 4096),
		apps:          make(map[string]App),
		batteryPath:   true,
		monitorSupply: true,
	}
	d.cpu = newCPU(clock, d.rnd, cfg.Cores)
	d.screen = newScreen()
	d.wifi = newRadio("wlan0", RadioWiFi, clock)
	d.cell = newRadio("rmnet0", RadioCellular, clock)
	d.bt = newRadio("bt0", RadioBluetooth, clock)
	d.fb = newFramebuffer()

	// Assemble the rail. Coefficients are calibrated so that the §4
	// workloads land in the paper's reported ranges (see DESIGN.md).
	for _, c := range []power.Component{
		power.NewConstant("soc-base", 22), // SoC, sensors, PMIC overhead
		d.cpu,
		d.screen,
		d.wifi,
		d.cell,
		d.bt,
		d.fb.decoder, // hardware video decode block
		newRipple(d.rnd.Fork("ripple")),
	} {
		if err := d.rail.Attach(c); err != nil {
			return nil, err
		}
	}
	d.recomputePath()
	if err := d.Boot(); err != nil {
		return nil, err
	}
	return d, nil
}

// Config reports the device's configuration.
func (d *Device) Config() Config { return d.cfg }

// Serial reports the ADB serial.
func (d *Device) Serial() string { return d.cfg.Serial }

// Clock exposes the device's clock (used by app models).
func (d *Device) Clock() simclock.Clock { return d.clock }

// Battery exposes the battery model.
func (d *Device) Battery() *battery.Battery { return d.batt }

// CPU exposes the CPU model.
func (d *Device) CPU() *CPU { return d.cpu }

// Screen exposes the screen model.
func (d *Device) Screen() *Screen { return d.screen }

// WiFi, Cellular and Bluetooth expose the radio models.
func (d *Device) WiFi() *Radio { return d.wifi }

// Cellular exposes the cellular radio.
func (d *Device) Cellular() *Radio { return d.cell }

// Bluetooth exposes the Bluetooth radio.
func (d *Device) Bluetooth() *Radio { return d.bt }

// Storage exposes the sdcard.
func (d *Device) Storage() *Storage { return d.store }

// Logcat exposes the log buffer.
func (d *Device) Logcat() *Logcat { return d.logcat }

// Framebuffer exposes the display pipeline state.
func (d *Device) Framebuffer() *Framebuffer { return d.fb }

// Rail exposes the device's power rail: the true current draw. The
// Monsoon model never reads this directly — it reads through the relay's
// MeasuredSource, or through USB distortion (USBObservedSource).
func (d *Device) Rail() *power.Rail { return d.rail }

// CurrentMA reports the true instantaneous draw: zero when the device is
// unpowered or off.
func (d *Device) CurrentMA(now time.Time) float64 {
	d.mu.Lock()
	off := !d.booted || d.path == PathNone
	d.mu.Unlock()
	if off {
		return 0
	}
	return d.rail.CurrentMA(now)
}

// Boot powers the OS up. It fails without a supply path.
func (d *Device) Boot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.booted {
		return fmt.Errorf("device %s: already booted", d.cfg.Serial)
	}
	if d.path == PathNone {
		return fmt.Errorf("device %s: no power source", d.cfg.Serial)
	}
	d.booted = true
	d.bootCount++
	d.cpu.startSystemProcesses()
	d.screen.SetOn(true)
	d.wifi.SetState(RadioIdle)
	d.bt.SetState(RadioIdle)
	d.logcat.Append("boot", Info, fmt.Sprintf("Android %d booted (count %d)", d.cfg.APILevel, d.bootCount))
	d.startDrainLocked()
	return nil
}

// Shutdown powers the OS down, killing all processes.
func (d *Device) Shutdown() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.booted {
		return fmt.Errorf("device %s: not booted", d.cfg.Serial)
	}
	d.shutdownLocked("shutdown requested")
	return nil
}

func (d *Device) shutdownLocked(reason string) {
	d.booted = false
	d.foreground = ""
	d.cpu.killAll()
	d.screen.SetOn(false)
	d.wifi.SetState(RadioOff)
	d.cell.SetState(RadioOff)
	d.bt.SetState(RadioOff)
	d.fb.SetActivity(0, 0)
	if d.drain != nil {
		d.drain.Stop()
		d.drain = nil
	}
	d.logcat.Append("power", Info, "shutdown: "+reason)
}

// Booted reports whether the OS is up.
func (d *Device) Booted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.booted
}

// BootCount reports how many times the device booted (factory-reset and
// power-loss testing).
func (d *Device) BootCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bootCount
}

// Path reports the active supply path.
func (d *Device) Path() PowerPath {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.path
}

// SetRelayPosition tells the device whether the relay connects it to its
// battery (true) or to the monitor's Vout (false = bypass). Wired up by
// the vantage point via relay.OnSwitch.
func (d *Device) SetRelayPosition(batteryPos bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batteryPath = batteryPos
	d.recomputePath()
}

// SetMonitorSupply informs the device whether the power monitor's Vout
// is live — wired by the vantage point to the socket/Vout state.
func (d *Device) SetMonitorSupply(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.monitorSupply = on
	d.recomputePath()
}

// USBSerial implements usb.Peripheral.
func (d *Device) USBSerial() string { return d.cfg.Serial }

// USBPowerChanged implements usb.Peripheral.
func (d *Device) USBPowerChanged(powered bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.usbPowered = powered
	d.recomputePath()
}

// recomputePath picks the supply: USB wins (hardware charge controller
// prefers VBUS), then battery/bypass per relay position. A transition to
// PathNone while booted is a hard power loss.
func (d *Device) recomputePath() {
	prev := d.path
	switch {
	case d.usbPowered:
		d.path = PathUSB
	case d.batteryPath && d.batt.Attached():
		d.path = PathBattery
	case !d.batteryPath && d.monitorSupply:
		d.path = PathMonitor
	default:
		d.path = PathNone
	}
	if d.path == PathNone && d.booted {
		d.shutdownLocked("power lost")
	}
	if prev != d.path {
		d.logcat.Append("power", Info, fmt.Sprintf("supply path %v -> %v", prev, d.path))
	}
}

// startDrainLocked begins battery charge accounting: every second the
// device integrates its draw and debits the battery when on the battery
// path.
func (d *Device) startDrainLocked() {
	const period = time.Second
	d.drain = simclock.NewTicker(d.clock, period, func(now time.Time) {
		d.mu.Lock()
		onBattery := d.booted && d.path == PathBattery
		d.mu.Unlock()
		if !onBattery {
			return
		}
		ma := d.rail.CurrentMA(now)
		mah := ma * period.Seconds() / 3600
		if _, err := d.batt.Drain(mah); err != nil {
			d.logcat.Append("power", Warn, "battery drain accounting: "+err.Error())
		}
	})
}

// USB supply model constants.
const (
	usbBudgetMA  = 500 // VBUS supply capability
	usbMicroCtrl = 38  // micro-controller activation draw
)

// USBObservedSource returns what a power monitor wired in parallel would
// see while USB is powered: the VBUS supplies most of the load, so the
// monitor observes only the residual above the USB budget plus the USB
// micro-controller's negotiation draw — a distorted reading. This is the
// quantitative reason BatteryLab cuts USB power during measurements.
func (d *Device) USBObservedSource() power.Source {
	return power.SourceFunc(func(now time.Time) float64 {
		d.mu.Lock()
		usb := d.usbPowered
		d.mu.Unlock()
		if !usb {
			return 0
		}
		true_ := d.CurrentMA(now)
		residual := true_ - usbBudgetMA
		if residual < 0 {
			residual = 0
		}
		return residual + usbMicroCtrl
	})
}

// MonitorVisibleSource reports the current that actually flows through
// the device's V+ terminal toward an external monitor: the full draw
// when the device runs off the monitor's supply, the distorted USB
// residual while VBUS is up (the §3.3 interference), and nothing when
// the device runs off its own battery.
func (d *Device) MonitorVisibleSource() power.Source {
	usbObs := d.USBObservedSource()
	return power.SourceFunc(func(now time.Time) float64 {
		switch d.Path() {
		case PathMonitor:
			return d.CurrentMA(now)
		case PathUSB:
			return usbObs.CurrentMA(now)
		default:
			return 0
		}
	})
}
