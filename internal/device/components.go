package device

import (
	"sync"
	"time"

	"batterylab/internal/rng"
)

// Screen models the display panel: ~60 mA floor when lit plus up to
// ~60 mA with brightness.
type Screen struct {
	mu         sync.Mutex
	on         bool
	brightness float64 // [0, 1]
}

func newScreen() *Screen {
	return &Screen{brightness: 0.5}
}

// Name implements power.Component.
func (s *Screen) Name() string { return "screen" }

// SetOn lights or darkens the panel.
func (s *Screen) SetOn(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.on = on
}

// On reports the panel state.
func (s *Screen) On() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on
}

// SetBrightness sets the backlight level, clamped to [0, 1].
func (s *Screen) SetBrightness(b float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b < 0 {
		b = 0
	}
	if b > 1 {
		b = 1
	}
	s.brightness = b
}

// Brightness reports the backlight level.
func (s *Screen) Brightness() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brightness
}

// CurrentMA implements power.Source.
func (s *Screen) CurrentMA(time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.on {
		return 0
	}
	return 50 + 50*s.brightness
}

// RadioKind distinguishes the device radios.
type RadioKind int

// Radio kinds.
const (
	RadioWiFi RadioKind = iota
	RadioCellular
	RadioBluetooth
)

func (k RadioKind) String() string {
	switch k {
	case RadioWiFi:
		return "wifi"
	case RadioCellular:
		return "cellular"
	default:
		return "bluetooth"
	}
}

// RadioState is a radio's power state.
type RadioState int

// Radio states.
const (
	RadioOff RadioState = iota
	RadioIdle
	RadioActive
)

// Radio models a network interface's power behaviour and byte counters.
// Transfers keep the radio in the active state for their duration; the
// active draw grows with the negotiated throughput.
type Radio struct {
	name string
	kind RadioKind
	clk  interface{ Now() time.Time }

	mu        sync.Mutex
	state     RadioState
	busyUntil time.Time
	rateMbps  float64 // throughput of the transfer in flight
	txBytes   int64
	rxBytes   int64
}

func newRadio(name string, kind RadioKind, clk interface{ Now() time.Time }) *Radio {
	return &Radio{name: name, kind: kind, clk: clk}
}

// Name implements power.Component.
func (r *Radio) Name() string { return r.name }

// Kind reports the radio type.
func (r *Radio) Kind() RadioKind { return r.kind }

// SetState forces the radio state (off/idle). Active state is managed by
// transfers.
func (r *Radio) SetState(s RadioState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = s
}

// State reports the radio state, accounting for in-flight transfers.
func (r *Radio) State() RadioState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stateLocked(r.clk.Now())
}

func (r *Radio) stateLocked(now time.Time) RadioState {
	if r.state == RadioOff {
		return RadioOff
	}
	if now.Before(r.busyUntil) {
		return RadioActive
	}
	return r.state
}

// Transfer accounts bytes moved at rateMbps, keeping the radio active for
// the transfer duration and returning that duration. tx selects the
// direction counter. A transfer on an off radio moves nothing.
func (r *Radio) Transfer(bytes int64, rateMbps float64, tx bool) time.Duration {
	if bytes <= 0 || rateMbps <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == RadioOff {
		return 0
	}
	dur := time.Duration(float64(bytes*8) / (rateMbps * 1e6) * float64(time.Second))
	now := r.clk.Now()
	start := now
	if r.busyUntil.After(now) {
		start = r.busyUntil // serialize behind the in-flight transfer
	}
	r.busyUntil = start.Add(dur)
	r.rateMbps = rateMbps
	if tx {
		r.txBytes += bytes
	} else {
		r.rxBytes += bytes
	}
	return r.busyUntil.Sub(now)
}

// Counters reports cumulative bytes moved.
func (r *Radio) Counters() (tx, rx int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.txBytes, r.rxBytes
}

// CurrentMA implements power.Source. Idle listening costs a trickle;
// active transfer cost grows with throughput and differs per radio
// technology (cellular radio burns more than WiFi at the same rate;
// Bluetooth is cheap).
func (r *Radio) CurrentMA(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := r.stateLocked(now)
	switch state {
	case RadioOff:
		return 0
	case RadioIdle:
		switch r.kind {
		case RadioBluetooth:
			return 1
		case RadioCellular:
			return 8
		default:
			return 4
		}
	default: // active
		rate := r.rateMbps
		switch r.kind {
		case RadioBluetooth:
			return 12
		case RadioCellular:
			return 180 + 6*rate
		default: // WiFi
			return 60 + 4.5*rate
		}
	}
}

// ripple models supply/PMIC noise: a small zero-mean wobble, piecewise
// constant per 50 ms, derived statelessly so all samplers agree.
type rippleComponent struct {
	rnd *rng.RNG
}

func newRipple(rnd *rng.RNG) *rippleComponent { return &rippleComponent{rnd: rnd} }

func (r *rippleComponent) Name() string { return "pmic-ripple" }

func (r *rippleComponent) CurrentMA(now time.Time) float64 {
	const epoch = 50 * time.Millisecond
	e := now.UnixNano() / int64(epoch)
	v := r.rnd.At("ripple", e).Normal(4, 2.5)
	if v < 0 {
		v = 0
	}
	return v
}
