package device

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"batterylab/internal/rng"
	"batterylab/internal/simclock"
)

// utilEpoch is the granularity of process-utilization noise: within one
// epoch a process's load is constant, so any sampler (the 5 kHz power
// monitor, the 1 Hz CPU monitor) observes a consistent value.
const utilEpoch = 100 * time.Millisecond

// CPU models the device SoC's cores plus the process table. Total
// utilization is the clamped sum of per-process loads; the current draw
// rises linearly with utilization.
type CPU struct {
	clock simclock.Clock
	rnd   *rng.RNG
	cores int

	// Current model: idleMA at 0 % plus perUtilMA per percentage point.
	// 6.3 mA/% puts an all-core burn near 650 mA — typical for a mid-range
	// 2018 SoC at nominal battery voltage.
	idleMA    float64
	perUtilMA float64

	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
}

func newCPU(clock simclock.Clock, rnd *rng.RNG, cores int) *CPU {
	return &CPU{
		clock:     clock,
		rnd:       rnd.Fork("cpu"),
		cores:     cores,
		idleMA:    8,
		perUtilMA: 6.3,
		nextPID:   1000,
		procs:     make(map[int]*Process),
	}
}

// Cores reports the core count.
func (c *CPU) Cores() int { return c.cores }

// Name implements power.Component.
func (c *CPU) Name() string { return "cpu" }

// CurrentMA implements power.Source.
func (c *CPU) CurrentMA(now time.Time) float64 {
	return c.idleMA + c.perUtilMA*c.UtilAt(now)
}

// UtilAt reports total utilization in percent [0, 100] at the given time.
func (c *CPU) UtilAt(now time.Time) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total float64
	for _, p := range c.procs {
		total += p.utilAt(now)
	}
	if total > 100 {
		total = 100
	}
	return total
}

// StartProcess spawns a process with zero load and returns it.
func (c *CPU) StartProcess(name string) *Process {
	c.mu.Lock()
	defer c.mu.Unlock()
	pid := c.nextPID
	c.nextPID++
	p := &Process{
		pid:   pid,
		name:  name,
		noise: c.rnd.Fork(fmt.Sprintf("proc/%d/%s", pid, name)),
	}
	c.procs[pid] = p
	return p
}

// Kill removes a process by pid.
func (c *CPU) Kill(pid int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.procs[pid]; !ok {
		return fmt.Errorf("cpu: no process %d", pid)
	}
	delete(c.procs, pid)
	return nil
}

// KillByName removes every process with the given name and reports how
// many it killed (`am force-stop` semantics).
func (c *CPU) KillByName(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for pid, p := range c.procs {
		if p.name == name {
			delete(c.procs, pid)
			n++
		}
	}
	return n
}

// Processes lists the process table sorted by pid.
func (c *CPU) Processes() []*Process {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Process, 0, len(c.procs))
	for _, p := range c.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// FindProcess returns the first process with the given name, or nil.
func (c *CPU) FindProcess(name string) *Process {
	for _, p := range c.Processes() {
		if p.name == name {
			return p
		}
	}
	return nil
}

// startSystemProcesses seeds the table with the OS baseline load.
func (c *CPU) startSystemProcesses() {
	sys := c.StartProcess("system_server")
	sys.SetLoad(1.6, 0.5)
	sys.SetMemMB(180)
	ui := c.StartProcess("com.android.systemui")
	ui.SetLoad(0.7, 0.3)
	ui.SetMemMB(120)
}

// killAll clears the process table (power loss / shutdown).
func (c *CPU) killAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.procs = make(map[int]*Process)
}

// Process is one entry in the device process table. Its utilization is a
// truncated-normal noise process around a target, piecewise-constant per
// utilEpoch, derived statelessly from the process's seed so that all
// samplers agree.
type Process struct {
	pid   int
	name  string
	noise *rng.RNG

	mu     sync.Mutex
	target float64 // percent
	sigma  float64
	memMB  float64
}

// PID reports the process id.
func (p *Process) PID() int { return p.pid }

// Name reports the process name.
func (p *Process) Name() string { return p.name }

// SetLoad sets the utilization target (percent) and its noise sigma.
func (p *Process) SetLoad(target, sigma float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if target < 0 {
		target = 0
	}
	p.target = target
	p.sigma = sigma
}

// Load reports the current target and sigma.
func (p *Process) Load() (target, sigma float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target, p.sigma
}

// SetMemMB sets resident memory for dumpsys meminfo.
func (p *Process) SetMemMB(mb float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.memMB = mb
}

// MemMB reports resident memory.
func (p *Process) MemMB() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.memMB
}

func (p *Process) utilAt(now time.Time) float64 {
	p.mu.Lock()
	target, sigma := p.target, p.sigma
	p.mu.Unlock()
	if target == 0 && sigma == 0 {
		return 0
	}
	epoch := now.UnixNano() / int64(utilEpoch)
	draw := p.noise.At("util", epoch)
	return draw.TruncNormal(target, sigma, 0, 100)
}
