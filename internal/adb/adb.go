// Package adb models the Android Debug Bridge as BatteryLab uses it: an
// ADB server on the controller reaching test devices over one of three
// transports — USB (most reliable, but its current corrupts power
// measurements), WiFi (measurement-safe, but precludes cellular
// experiments), and Bluetooth (requires a rooted device). The controller
// switches transports dynamically per experiment needs (§3.3).
//
// The command surface implements the `adb shell` subset the paper's
// automation scripts use: input injection, activity management, package
// management, dumpsys, logcat and file transfer.
package adb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"batterylab/internal/device"
	"batterylab/internal/usb"
	"batterylab/internal/wifi"
)

// TransportKind selects how the server reaches a device.
type TransportKind int

// Transports.
const (
	TransportUSB TransportKind = iota
	TransportWiFi
	TransportBluetooth
)

func (t TransportKind) String() string {
	switch t {
	case TransportUSB:
		return "usb"
	case TransportWiFi:
		return "wifi"
	default:
		return "bluetooth"
	}
}

// Latency reports the per-command round-trip cost of the transport.
func (t TransportKind) Latency() time.Duration {
	switch t {
	case TransportUSB:
		return 5 * time.Millisecond
	case TransportWiFi:
		return 18 * time.Millisecond
	default:
		return 45 * time.Millisecond
	}
}

// ErrOffline matches adb's "device offline" failure.
var ErrOffline = errors.New("adb: device offline")

// Server is the controller-side ADB server.
type Server struct {
	hub *usb.Hub
	ap  *wifi.AP

	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	dev       *device.Device
	transport TransportKind
	tcpip     bool // `adb tcpip` was issued (WiFi transport armed)
}

// NewServer returns a server that resolves USB availability through hub
// and WiFi availability through ap. Either may be nil if the vantage
// point lacks that channel.
func NewServer(hub *usb.Hub, ap *wifi.AP) *Server {
	return &Server{hub: hub, ap: ap, entries: make(map[string]*entry)}
}

// Register makes a device known to the server (the udev-style discovery
// when a device appears on any transport). Devices start on USB. ADB is
// Android tooling: iOS devices (future work in the paper, §5) are
// automated through the Bluetooth keyboard or XCTest instead.
func (s *Server) Register(d *device.Device) error {
	if os := d.Config().OS; os != "android" {
		return fmt.Errorf("adb: %s runs %s; ADB requires Android", d.Serial(), os)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[d.Serial()]; dup {
		return fmt.Errorf("adb: device %s already registered", d.Serial())
	}
	s.entries[d.Serial()] = &entry{dev: d, transport: TransportUSB}
	return nil
}

// Devices lists registered serials with their state, like `adb devices`.
func (s *Server) Devices() []DeviceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceState, 0, len(s.entries))
	for serial, e := range s.entries {
		st := DeviceState{Serial: serial, Transport: e.transport}
		st.Online = s.availableLocked(serial, e) == nil
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// DeviceState is one `adb devices` row.
type DeviceState struct {
	Serial    string
	Transport TransportKind
	Online    bool
}

func (s *Server) lookup(serial string) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[serial]
	if !ok {
		return nil, fmt.Errorf("adb: device '%s' not found", serial)
	}
	return e, nil
}

// availableLocked checks the entry's transport reachability.
func (s *Server) availableLocked(serial string, e *entry) error {
	if !e.dev.Booted() {
		return fmt.Errorf("%w: %s not booted", ErrOffline, serial)
	}
	switch e.transport {
	case TransportUSB:
		if s.hub == nil {
			return fmt.Errorf("%w: no USB hub", ErrOffline)
		}
		port := s.hub.PortOf(serial)
		if port < 0 {
			return fmt.Errorf("%w: %s not on USB", ErrOffline, serial)
		}
		powered, err := s.hub.Powered(port)
		if err != nil || !powered {
			return fmt.Errorf("%w: USB port %d unpowered", ErrOffline, port)
		}
	case TransportWiFi:
		if !e.tcpip {
			return fmt.Errorf("%w: adb-over-wifi not enabled on %s", ErrOffline, serial)
		}
		if s.ap == nil || !s.ap.Connected(serial) {
			return fmt.Errorf("%w: %s not on WiFi", ErrOffline, serial)
		}
		if e.dev.WiFi().State() == device.RadioOff {
			return fmt.Errorf("%w: %s WiFi radio off", ErrOffline, serial)
		}
	case TransportBluetooth:
		if !e.dev.Config().Rooted {
			return fmt.Errorf("adb: ADB-over-Bluetooth requires a rooted device (%s)", serial)
		}
		if e.dev.Bluetooth().State() == device.RadioOff {
			return fmt.Errorf("%w: %s Bluetooth radio off", ErrOffline, serial)
		}
	}
	return nil
}

// available is availableLocked with locking.
func (s *Server) available(serial string) (*entry, error) {
	e, err := s.lookup(serial)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.availableLocked(serial, e); err != nil {
		return nil, err
	}
	return e, nil
}

// EnableTCPIP arms the WiFi transport (`adb tcpip 5555`). Like the real
// tool, it must be issued while the device is reachable over USB.
func (s *Server) EnableTCPIP(serial string) error {
	e, err := s.lookup(serial)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.tcpip {
		return nil // already armed; `adb tcpip` is idempotent
	}
	if e.transport != TransportUSB {
		return fmt.Errorf("adb: tcpip must be enabled over USB (current: %v)", e.transport)
	}
	if err := s.availableLocked(serial, e); err != nil {
		return err
	}
	e.tcpip = true
	return nil
}

// SetTransport switches the transport used for subsequent commands,
// verifying the new transport is reachable.
func (s *Server) SetTransport(serial string, t TransportKind) error {
	e, err := s.lookup(serial)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := e.transport
	e.transport = t
	if err := s.availableLocked(serial, e); err != nil {
		e.transport = prev
		return err
	}
	return nil
}

// Transport reports the device's current transport.
func (s *Server) Transport(serial string) (TransportKind, error) {
	e, err := s.lookup(serial)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.transport, nil
}

// CommandLatency reports the per-command latency of the device's current
// transport; automation drivers pace scripts with it.
func (s *Server) CommandLatency(serial string) (time.Duration, error) {
	t, err := s.Transport(serial)
	if err != nil {
		return 0, err
	}
	return t.Latency(), nil
}

// Push uploads a file to the device (`adb push`).
func (s *Server) Push(serial, path string, data []byte) error {
	e, err := s.available(serial)
	if err != nil {
		return err
	}
	return e.dev.Storage().Push(path, data)
}

// Pull downloads a file from the device (`adb pull`).
func (s *Server) Pull(serial, path string) ([]byte, error) {
	e, err := s.available(serial)
	if err != nil {
		return nil, err
	}
	return e.dev.Storage().Pull(path)
}
