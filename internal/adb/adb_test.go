package adb

import (
	"errors"
	"strings"
	"testing"

	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/usb"
	"batterylab/internal/wifi"
)

type rig struct {
	clk *simclock.Virtual
	dev *device.Device
	hub *usb.Hub
	ap  *wifi.AP
	srv *Server
}

func newRig(t *testing.T, rooted bool) *rig {
	t.Helper()
	clk := simclock.NewVirtual()
	dev, err := device.New(clk, device.Config{Seed: 1, Rooted: rooted})
	if err != nil {
		t.Fatal(err)
	}
	hub := usb.NewHub(4)
	if err := hub.Attach(0, dev); err != nil {
		t.Fatal(err)
	}
	ap := wifi.NewAP("blab", wifi.ModeNAT)
	if err := ap.Connect(dev); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(hub, ap)
	if err := srv.Register(dev); err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, dev: dev, hub: hub, ap: ap, srv: srv}
}

func TestRegisterAndDevices(t *testing.T) {
	r := newRig(t, false)
	if err := r.srv.Register(r.dev); err == nil {
		t.Fatal("double register accepted")
	}
	devs := r.srv.Devices()
	if len(devs) != 1 || !devs[0].Online || devs[0].Transport != TransportUSB {
		t.Fatalf("devices = %+v", devs)
	}
}

func TestUSBUnpoweredGoesOffline(t *testing.T) {
	r := newRig(t, false)
	r.hub.SetPower(0, false)
	if _, err := r.srv.Shell(r.dev.Serial(), "echo hi"); !errors.Is(err, ErrOffline) {
		t.Fatalf("want ErrOffline, got %v", err)
	}
	devs := r.srv.Devices()
	if devs[0].Online {
		t.Fatal("device listed online with unpowered port")
	}
}

func TestTCPIPRequiresUSBFirst(t *testing.T) {
	r := newRig(t, false)
	// Try WiFi before enabling tcpip.
	if err := r.srv.SetTransport(r.dev.Serial(), TransportWiFi); err == nil {
		t.Fatal("WiFi transport without tcpip accepted")
	}
	if err := r.srv.EnableTCPIP(r.dev.Serial()); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.SetTransport(r.dev.Serial(), TransportWiFi); err != nil {
		t.Fatal(err)
	}
	tr, _ := r.srv.Transport(r.dev.Serial())
	if tr != TransportWiFi {
		t.Fatalf("transport = %v", tr)
	}
	// Now USB power can be cut and commands still flow (the measurement
	// configuration).
	r.hub.SetPower(0, false)
	if _, err := r.srv.Shell(r.dev.Serial(), "echo hi"); err != nil {
		t.Fatalf("WiFi shell with USB off: %v", err)
	}
}

func TestBluetoothRequiresRoot(t *testing.T) {
	r := newRig(t, false)
	if err := r.srv.SetTransport(r.dev.Serial(), TransportBluetooth); err == nil {
		t.Fatal("BT transport on unrooted device accepted")
	}
	rr := newRig(t, true)
	if err := rr.srv.SetTransport(rr.dev.Serial(), TransportBluetooth); err != nil {
		t.Fatal(err)
	}
}

func TestFailedTransportSwitchKeepsPrevious(t *testing.T) {
	r := newRig(t, false)
	if err := r.srv.SetTransport(r.dev.Serial(), TransportBluetooth); err == nil {
		t.Fatal("switch should fail")
	}
	tr, _ := r.srv.Transport(r.dev.Serial())
	if tr != TransportUSB {
		t.Fatalf("transport = %v after failed switch, want usb", tr)
	}
}

func TestShellEchoAndUnknown(t *testing.T) {
	r := newRig(t, false)
	out, err := r.srv.Shell(r.dev.Serial(), "echo hello world")
	if err != nil || out != "hello world" {
		t.Fatalf("echo = %q, %v", out, err)
	}
	if _, err := r.srv.Shell(r.dev.Serial(), "frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := r.srv.Shell(r.dev.Serial(), ""); err == nil {
		t.Fatal("empty command accepted")
	}
	if _, err := r.srv.Shell("nosuch", "echo"); err == nil {
		t.Fatal("unknown serial accepted")
	}
}

func TestShellInputRouting(t *testing.T) {
	r := newRig(t, false)
	app := &captureApp{pkg: "com.app"}
	r.dev.Install(app)
	r.dev.LaunchApp("com.app")

	cmds := []string{
		"input tap 100 200",
		"input keyevent KEYCODE_ENTER",
		"input text hello",
		"input swipe 300 800 300 200 300", // swipe up = scroll down
	}
	for _, c := range cmds {
		if _, err := r.srv.Shell(r.dev.Serial(), c); err != nil {
			t.Fatalf("%q: %v", c, err)
		}
	}
	if len(app.events) != 4 {
		t.Fatalf("events = %d", len(app.events))
	}
	if app.events[0].Kind != device.InputTap || app.events[0].X != 100 {
		t.Fatalf("tap = %+v", app.events[0])
	}
	if app.events[3].Kind != device.InputScroll || !app.events[3].ScrollDown {
		t.Fatalf("swipe = %+v", app.events[3])
	}
}

func TestShellInputErrors(t *testing.T) {
	r := newRig(t, false)
	bad := []string{
		"input",
		"input tap 1",
		"input tap a b",
		"input keyevent",
		"input swipe 1 2 3",
		"input frob",
	}
	for _, c := range bad {
		if _, err := r.srv.Shell(r.dev.Serial(), c); err == nil {
			t.Fatalf("%q accepted", c)
		}
	}
}

func TestShellAMLifecycle(t *testing.T) {
	r := newRig(t, false)
	app := &captureApp{pkg: "com.brave.browser"}
	r.dev.Install(app)
	out, err := r.srv.Shell(r.dev.Serial(), "am start -n com.brave.browser/.MainActivity")
	if err != nil || !strings.Contains(out, "com.brave.browser") {
		t.Fatalf("am start = %q, %v", out, err)
	}
	if r.dev.Foreground() != "com.brave.browser" {
		t.Fatal("app not foregrounded")
	}
	if _, err := r.srv.Shell(r.dev.Serial(), "am force-stop com.brave.browser"); err != nil {
		t.Fatal(err)
	}
	if r.dev.Foreground() != "" {
		t.Fatal("app not stopped")
	}
	if _, err := r.srv.Shell(r.dev.Serial(), "am start"); err == nil {
		t.Fatal("am start without -n accepted")
	}
}

func TestShellPM(t *testing.T) {
	r := newRig(t, false)
	app := &captureApp{pkg: "com.app"}
	r.dev.Install(app)
	out, err := r.srv.Shell(r.dev.Serial(), "pm list packages")
	if err != nil || !strings.Contains(out, "package:com.app") {
		t.Fatalf("pm list = %q, %v", out, err)
	}
	out, err = r.srv.Shell(r.dev.Serial(), "pm clear com.app")
	if err != nil || out != "Success" {
		t.Fatalf("pm clear = %q, %v", out, err)
	}
	if app.cleared != 1 {
		t.Fatal("ClearData not invoked")
	}
}

func TestShellDumpsysAndLogcat(t *testing.T) {
	r := newRig(t, false)
	out, err := r.srv.Shell(r.dev.Serial(), "dumpsys battery")
	if err != nil || !strings.Contains(out, "level:") {
		t.Fatalf("dumpsys = %q, %v", out, err)
	}
	r.dev.Logcat().Append("T", device.Info, "marker")
	out, err = r.srv.Shell(r.dev.Serial(), "logcat -d")
	if err != nil || !strings.Contains(out, "marker") {
		t.Fatalf("logcat -d = %q, %v", out, err)
	}
	if _, err := r.srv.Shell(r.dev.Serial(), "logcat -c"); err != nil {
		t.Fatal(err)
	}
	if r.dev.Logcat().Len() != 0 {
		t.Fatal("logcat -c did not clear")
	}
}

func TestShellGetprop(t *testing.T) {
	r := newRig(t, false)
	out, err := r.srv.Shell(r.dev.Serial(), "getprop ro.product.model")
	if err != nil || out != "Samsung J7 Duo" {
		t.Fatalf("getprop = %q, %v", out, err)
	}
	out, err = r.srv.Shell(r.dev.Serial(), "getprop")
	if err != nil || !strings.Contains(out, "[ro.serialno]") {
		t.Fatalf("getprop all = %q, %v", out, err)
	}
}

func TestPushPullRm(t *testing.T) {
	r := newRig(t, false)
	if err := r.srv.Push(r.dev.Serial(), "/sdcard/v.mp4", []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := r.srv.Pull(r.dev.Serial(), "/sdcard/v.mp4")
	if err != nil || string(data) != "x" {
		t.Fatalf("pull = %q, %v", data, err)
	}
	out, err := r.srv.Shell(r.dev.Serial(), "ls /sdcard/")
	if err != nil || !strings.Contains(out, "v.mp4") {
		t.Fatalf("ls = %q, %v", out, err)
	}
	if _, err := r.srv.Shell(r.dev.Serial(), "rm /sdcard/v.mp4"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.srv.Pull(r.dev.Serial(), "/sdcard/v.mp4"); err == nil {
		t.Fatal("pull after rm succeeded")
	}
}

func TestCommandLatencyOrdering(t *testing.T) {
	if !(TransportUSB.Latency() < TransportWiFi.Latency() &&
		TransportWiFi.Latency() < TransportBluetooth.Latency()) {
		t.Fatal("latency ordering: USB < WiFi < BT expected")
	}
	r := newRig(t, false)
	lat, err := r.srv.CommandLatency(r.dev.Serial())
	if err != nil || lat != TransportUSB.Latency() {
		t.Fatalf("latency = %v, %v", lat, err)
	}
}

func TestOfflineWhenNotBooted(t *testing.T) {
	r := newRig(t, false)
	r.dev.Shutdown()
	if _, err := r.srv.Shell(r.dev.Serial(), "echo hi"); !errors.Is(err, ErrOffline) {
		t.Fatalf("want ErrOffline, got %v", err)
	}
}

// captureApp records delivered input events.
type captureApp struct {
	pkg     string
	events  []device.InputEvent
	cleared int
}

func (c *captureApp) PackageName() string            { return c.pkg }
func (c *captureApp) Launch(*device.Device) error    { return nil }
func (c *captureApp) Stop(*device.Device) error      { return nil }
func (c *captureApp) ClearData(*device.Device) error { c.cleared++; return nil }
func (c *captureApp) HandleInput(_ *device.Device, ev device.InputEvent) error {
	c.events = append(c.events, ev)
	return nil
}
