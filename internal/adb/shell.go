package adb

import (
	"fmt"
	"strconv"
	"strings"

	"batterylab/internal/device"
)

// Shell executes an `adb shell` command on the device and returns its
// output. The supported surface is the subset BatteryLab's automation
// scripts and the execute_adb API use.
func (s *Server) Shell(serial, cmd string) (string, error) {
	e, err := s.available(serial)
	if err != nil {
		return "", err
	}
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", fmt.Errorf("adb: empty shell command")
	}
	d := e.dev
	switch fields[0] {
	case "input":
		return "", shellInput(d, fields[1:])
	case "am":
		return shellAM(d, fields[1:])
	case "pm":
		return shellPM(d, fields[1:])
	case "dumpsys":
		if len(fields) != 2 {
			return "", fmt.Errorf("adb: usage: dumpsys <service>")
		}
		return d.Dumpsys(fields[1])
	case "logcat":
		return shellLogcat(d, fields[1:])
	case "rm":
		if len(fields) != 2 {
			return "", fmt.Errorf("adb: usage: rm <path>")
		}
		return "", d.Storage().Delete(fields[1])
	case "ls":
		prefix := "/"
		if len(fields) > 1 {
			prefix = fields[1]
		}
		return strings.Join(d.Storage().List(prefix), "\n"), nil
	case "getprop":
		return shellGetprop(d, fields[1:])
	case "echo":
		return strings.Join(fields[1:], " "), nil
	default:
		return "", fmt.Errorf("adb: %s: inaccessible or not found", fields[0])
	}
}

func shellInput(d *device.Device, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("adb: usage: input <tap|keyevent|text|swipe> ...")
	}
	switch args[0] {
	case "tap":
		if len(args) != 3 {
			return fmt.Errorf("adb: usage: input tap <x> <y>")
		}
		x, errX := strconv.Atoi(args[1])
		y, errY := strconv.Atoi(args[2])
		if errX != nil || errY != nil {
			return fmt.Errorf("adb: input tap: bad coordinates")
		}
		return d.Input(device.InputEvent{Kind: device.InputTap, X: x, Y: y})
	case "keyevent":
		if len(args) != 2 {
			return fmt.Errorf("adb: usage: input keyevent <code>")
		}
		return d.Input(device.InputEvent{Kind: device.InputKey, Key: args[1]})
	case "text":
		if len(args) < 2 {
			return fmt.Errorf("adb: usage: input text <string>")
		}
		return d.Input(device.InputEvent{Kind: device.InputText, Text: strings.Join(args[1:], " ")})
	case "swipe":
		if len(args) < 5 {
			return fmt.Errorf("adb: usage: input swipe <x1> <y1> <x2> <y2> [ms]")
		}
		y1, err1 := strconv.Atoi(args[2])
		y2, err2 := strconv.Atoi(args[4])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("adb: input swipe: bad coordinates")
		}
		// Swiping up (end above start) scrolls the page down.
		return d.Input(device.InputEvent{Kind: device.InputScroll, ScrollDown: y2 < y1})
	default:
		return fmt.Errorf("adb: input: unknown subcommand %q", args[0])
	}
}

func shellAM(d *device.Device, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("adb: usage: am <start|force-stop> ...")
	}
	switch args[0] {
	case "start":
		// am start -n pkg/.Activity  (component's package part is used)
		pkg := ""
		for i := 1; i < len(args); i++ {
			if args[i] == "-n" && i+1 < len(args) {
				pkg = strings.SplitN(args[i+1], "/", 2)[0]
			}
		}
		if pkg == "" {
			return "", fmt.Errorf("adb: am start: missing -n <component>")
		}
		if err := d.LaunchApp(pkg); err != nil {
			return "", err
		}
		return "Starting: Intent { cmp=" + pkg + " }", nil
	case "force-stop":
		if len(args) != 2 {
			return "", fmt.Errorf("adb: usage: am force-stop <package>")
		}
		return "", d.StopApp(args[1])
	default:
		return "", fmt.Errorf("adb: am: unknown subcommand %q", args[0])
	}
}

func shellPM(d *device.Device, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("adb: usage: pm <list|clear> ...")
	}
	switch args[0] {
	case "list":
		if len(args) >= 2 && args[1] == "packages" {
			var b strings.Builder
			for _, pkg := range d.Packages() {
				fmt.Fprintf(&b, "package:%s\n", pkg)
			}
			return b.String(), nil
		}
		return "", fmt.Errorf("adb: pm list: only 'packages' supported")
	case "clear":
		if len(args) != 2 {
			return "", fmt.Errorf("adb: usage: pm clear <package>")
		}
		if err := d.ClearAppData(args[1]); err != nil {
			return "Failed", err
		}
		return "Success", nil
	default:
		return "", fmt.Errorf("adb: pm: unknown subcommand %q", args[0])
	}
}

func shellLogcat(d *device.Device, args []string) (string, error) {
	if len(args) == 1 && args[0] == "-c" {
		d.Logcat().Clear()
		return "", nil
	}
	if len(args) == 1 && args[0] == "-d" {
		return d.Logcat().DumpText(), nil
	}
	return "", fmt.Errorf("adb: logcat: only -d and -c supported")
}

func shellGetprop(d *device.Device, args []string) (string, error) {
	cfg := d.Config()
	props := map[string]string{
		"ro.product.model":          cfg.Model,
		"ro.build.version.sdk":      strconv.Itoa(cfg.APILevel),
		"ro.serialno":               cfg.Serial,
		"ro.build.type":             "user",
		"ro.boot.verifiedbootstate": "green",
	}
	if len(args) == 1 {
		return props[args[0]], nil
	}
	var b strings.Builder
	for _, k := range []string{"ro.boot.verifiedbootstate", "ro.build.type", "ro.build.version.sdk", "ro.product.model", "ro.serialno"} {
		fmt.Fprintf(&b, "[%s]: [%s]\n", k, props[k])
	}
	return b.String(), nil
}
