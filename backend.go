package batterylab

// The location-transparent backend interface of the v1 remote
// execution API: the same declarative spec runs in-process (compiled
// through the platform's workload registry) or across the network
// (POSTed to an access server and streamed back). Examples and CLIs
// written against Backend do not know — or care — where the hardware
// is; that is the paper's core promise (§3: remote access to
// distributed vantage points) surfaced as an API contract.

import (
	"context"
	"fmt"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/core"
	"batterylab/internal/remote"
	"batterylab/internal/simclock"
)

// DriveBuilds lets a virtual-clock platform serve real-time remote
// clients: it advances simulated time (one timer deadline per step)
// whenever the access server has queued or running builds, and freezes
// it when the server is idle — so experiments run at simulation speed
// while idle-time machinery (cron maintenance, the multi-day
// artifact-retention expiry) does not race ahead of clients still
// streaming or fetching results. Stepping coordinates with the
// server's dispatch via the clock's hold protocol, so a run dispatched
// at instant t deterministically starts at t no matter how the driver
// interleaves. It returns when stop is closed. On a real clock it is a
// no-op: time drives itself.
func DriveBuilds(clock Clock, p *Platform, stop <-chan struct{}) {
	v, ok := clock.(*simclock.Virtual)
	if !ok {
		return
	}
	const (
		// activePoll keeps step latency low while builds are in flight
		// (a held clock, or one waiting on new work, re-checks quickly).
		activePoll = 200 * time.Microsecond
		// idlePoll is the relaxed cadence when no builds exist — the
		// driver is just watching for the next submission.
		idlePoll = 5 * time.Millisecond
	)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if p.Access.Running() == 0 && p.Access.QueueLength() == 0 {
			time.Sleep(idlePoll)
			continue
		}
		if !v.Step() {
			time.Sleep(activePoll)
		}
	}
}

// NewAPIToken creates a platform user and returns its bearer token for
// the HTTP APIs; role is "admin", "experimenter" or "tester".
func NewAPIToken(p *Platform, name, role string) (string, error) {
	var r accessserver.Role
	switch role {
	case "admin":
		r = accessserver.RoleAdmin
	case "experimenter":
		r = accessserver.RoleExperimenter
	case "tester":
		r = accessserver.RoleTester
	default:
		return "", fmt.Errorf("batterylab: unknown role %q (want admin, experimenter or tester)", role)
	}
	u, err := p.Access.Users.Add(name, r)
	if err != nil {
		return "", err
	}
	return u.Token, nil
}

// Wire-level v1 spec types, re-exported from internal/api (which
// documents the JSON schema).
type (
	// ExperimentSpecV1 is the declarative wire form of one measurement
	// run: node, device, named workload + params, monitor config,
	// constraints.
	ExperimentSpecV1 = api.ExperimentSpec
	// CampaignSpecV1 is the wire form of a measurement campaign.
	CampaignSpecV1 = api.CampaignSpec
	// WorkloadSpec names a registry workload and its parameters.
	WorkloadSpec = api.WorkloadSpec
	// MonitorSpec configures the monitor and sampling cadences.
	MonitorSpec = api.MonitorSpec
	// Params carries workload parameters with JSON-tolerant getters.
	Params = api.Params
	// NodeInfo describes one vantage point and its devices.
	NodeInfo = api.NodeInfo
	// NodeDetail is one vantage point's lifecycle snapshot (health,
	// heartbeat age, drain flag, leased builds).
	NodeDetail = api.NodeDetail
	// APIError is the typed error envelope of the v1 wire protocol;
	// branch on its Code.
	APIError = api.Error
)

// ExperimentHandle is the session shape shared by local and remote
// runs: Wait for the result, Cancel at the earliest safe point, Done
// for select loops, Phase for progress. *core.Session and
// *remote.Session both satisfy it.
type ExperimentHandle interface {
	Wait(ctx context.Context) (*Result, error)
	Cancel()
	Done() <-chan struct{}
	Phase() Phase
}

// RunOutcome is one experiment's outcome within a campaign, in the
// location-transparent shape (the local CampaignRun carries the
// compiled spec, which has no wire form).
type RunOutcome struct {
	// Index is the experiment's position in the campaign spec.
	Index int
	// Node and Device identify the run.
	Node   string
	Device string
	// Result is the measurement (nil when Err is set).
	Result *Result
	// Err is the per-run failure; one run failing never aborts
	// siblings.
	Err error
}

// CampaignHandle is the campaign shape shared by local and remote
// backends.
type CampaignHandle interface {
	Wait(ctx context.Context) ([]RunOutcome, error)
	Cancel()
	Done() <-chan struct{}
}

// Backend runs declarative v1 specs somewhere — in this process or on
// a remote access server. Construct with LocalBackend or
// RemoteBackend.
type Backend interface {
	// StartExperimentSpec submits one run and returns its session.
	StartExperimentSpec(ctx context.Context, spec ExperimentSpecV1, obs ...Observer) (ExperimentHandle, error)
	// StartCampaignSpec submits a batch; runs fan out across vantage
	// points, serialized per device.
	StartCampaignSpec(ctx context.Context, spec CampaignSpecV1, obs ...Observer) (CampaignHandle, error)
	// Nodes lists the reachable vantage points and their devices.
	Nodes(ctx context.Context) ([]NodeInfo, error)
	// Workloads lists the workload registry's names.
	Workloads(ctx context.Context) ([]string, error)
}

// LocalBackend adapts an in-process Platform to the Backend interface:
// specs compile through the platform's workload registry and run as
// ordinary core sessions (driving the virtual clock from Wait, exactly
// like StartExperiment).
func LocalBackend(p *Platform) Backend { return localBackend{p} }

type localBackend struct{ p *core.Platform }

func (b localBackend) StartExperimentSpec(ctx context.Context, spec ExperimentSpecV1, obs ...Observer) (ExperimentHandle, error) {
	s, err := b.p.StartExperimentSpec(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (b localBackend) StartCampaignSpec(ctx context.Context, spec CampaignSpecV1, obs ...Observer) (CampaignHandle, error) {
	cs, err := b.p.StartCampaignSpec(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return localCampaign{cs}, nil
}

func (b localBackend) Nodes(ctx context.Context) ([]NodeInfo, error) {
	infos := make([]NodeInfo, 0)
	for _, name := range b.p.Access.Nodes.List() {
		info := NodeInfo{Name: name}
		if ctl, err := b.p.Controller(name); err == nil {
			info.Devices = ctl.ListDevices()
		}
		infos = append(infos, info)
	}
	return infos, nil
}

func (b localBackend) Workloads(ctx context.Context) ([]string, error) {
	return b.p.Workloads().Names(), nil
}

// localCampaign maps core.CampaignRun to the shared RunOutcome shape.
type localCampaign struct{ cs *core.CampaignSession }

func (c localCampaign) Wait(ctx context.Context) ([]RunOutcome, error) {
	runs, err := c.cs.Wait(ctx)
	out := make([]RunOutcome, len(runs))
	for i, r := range runs {
		out[i] = RunOutcome{
			Index: r.Index,
			Node:  r.Spec.Node, Device: r.Spec.Device,
			Result: r.Result, Err: r.Err,
		}
	}
	return out, err
}

func (c localCampaign) Cancel()               { c.cs.Cancel() }
func (c localCampaign) Done() <-chan struct{} { return c.cs.Done() }

// RemoteBackend connects to an access server's v1 API and returns a
// Backend whose sessions stream phase events and live samples back and
// reconstruct results from the build workspace. server is the base
// URL (e.g. "http://lab.example:9090"); token is the user's API token.
func RemoteBackend(server, token string) (Backend, error) {
	p, err := remote.Dial(server, token)
	if err != nil {
		return nil, err
	}
	return remoteBackend{p}, nil
}

type remoteBackend struct{ p *remote.Platform }

func (b remoteBackend) StartExperimentSpec(ctx context.Context, spec ExperimentSpecV1, obs ...Observer) (ExperimentHandle, error) {
	s, err := b.p.StartExperiment(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (b remoteBackend) StartCampaignSpec(ctx context.Context, spec CampaignSpecV1, obs ...Observer) (CampaignHandle, error) {
	c, err := b.p.StartCampaign(ctx, spec, obs...)
	if err != nil {
		return nil, err
	}
	return remoteCampaign{c}, nil
}

func (b remoteBackend) Nodes(ctx context.Context) ([]NodeInfo, error) {
	return b.p.Nodes(ctx)
}

func (b remoteBackend) Workloads(ctx context.Context) ([]string, error) {
	return b.p.WorkloadNames(ctx)
}

// remoteCampaign maps remote.CampaignRun to the shared RunOutcome
// shape.
type remoteCampaign struct{ c *remote.Campaign }

func (c remoteCampaign) Wait(ctx context.Context) ([]RunOutcome, error) {
	runs, err := c.c.Wait(ctx)
	out := make([]RunOutcome, len(runs))
	for i, r := range runs {
		out[i] = RunOutcome{
			Index: r.Index,
			Node:  r.Node, Device: r.Device,
			Result: r.Result, Err: r.Err,
		}
	}
	return out, err
}

func (c remoteCampaign) Cancel()               { c.c.Cancel() }
func (c remoteCampaign) Done() <-chan struct{} { return c.c.Done() }
