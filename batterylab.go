// Package batterylab is the public API of the BatteryLab platform — a
// distributed power monitoring platform for mobile devices (Varvello et
// al., HotNets 2019), reproduced as a Go library with every hardware
// dependency (Monsoon power monitor, relay circuit switch, Android test
// devices, Raspberry Pi controller, Meross socket, ProtonVPN tunnels)
// simulated faithfully.
//
// The typical flow mirrors the paper's architecture. The v2 experiment
// API is session-based: StartExperiment returns a handle with Wait,
// Cancel and observer hooks, and RunExperiment is the blocking shorthand
// — both context-aware, so callers can cancel a run and have the VPN,
// mirroring session and monitor torn down cleanly:
//
//	clock := batterylab.VirtualClock()                  // or RealClock()
//	dep, _ := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 1})
//	sess, _ := dep.Platform.StartExperiment(ctx, batterylab.ExperimentSpec{
//	    Node:      dep.NodeName,
//	    Device:    dep.DeviceSerial,
//	    Mirroring: true,
//	    Workload:  func(drv batterylab.Driver) *batterylab.Script { ... },
//	}, batterylab.ObserverFuncs{
//	    Phase: func(e batterylab.PhaseChange) { fmt.Println(e.Phase) },
//	})
//	res, _ := sess.Wait(ctx) // or sess.Cancel()
//	fmt.Println(res.EnergyMAH)
//
// Measurement campaigns — many specs across many vantage points — are
// first-class: RunCampaign schedules them concurrently across nodes
// (serialized per device, since one Monsoon powers one device) and
// returns aggregated per-run outcomes:
//
//	runs, _ := dep.Platform.RunCampaign(ctx, batterylab.Campaign{Specs: specs})
//
// The v1 remote execution API makes the platform location-transparent:
// a declarative ExperimentSpecV1 (node, device, named workload +
// params) runs through the same Backend interface whether the hardware
// is in-process or behind an access server's HTTP API (see backend.go,
// internal/api for the wire schema, and examples/remote):
//
//	backend, _ := batterylab.RemoteBackend("http://lab:9090", token)
//	sess, _ := backend.StartExperimentSpec(ctx, batterylab.ExperimentSpecV1{
//	    Node: "node1", Device: serial,
//	    Workload: batterylab.WorkloadSpec{Name: "browser",
//	        Params: batterylab.Params{"browser": "Brave", "pages": 3}},
//	})
//	res, _ := sess.Wait(ctx) // phase events + live samples streamed
//
// A Deployment is one vantage point (controller + device + monitor)
// joined to a platform (access server + DNS + CA) — the paper's Imperial
// College setup. Multi-vantage-point federations are built by creating
// controllers with NewController and joining them via Platform.Join.
package batterylab

import (
	"fmt"
	"time"

	"batterylab/internal/automation"
	"batterylab/internal/browser"
	"batterylab/internal/controller"
	"batterylab/internal/core"
	"batterylab/internal/device"
	"batterylab/internal/mirror"
	"batterylab/internal/samples"
	"batterylab/internal/simclock"
	"batterylab/internal/video"
	"batterylab/internal/vpn"
)

// Re-exported platform types. The internal packages carry the full
// documentation.
type (
	// Platform is a BatteryLab deployment: access server, DNS zone,
	// certificate authority and joined vantage points.
	Platform = core.Platform
	// ExperimentSpec describes one battery measurement run.
	ExperimentSpec = core.ExperimentSpec
	// Result carries an experiment's traces and energy figure.
	Result = core.Result
	// Transport selects the measurement-time automation channel.
	Transport = core.Transport

	// Session is a handle to one in-flight experiment (Wait, Cancel,
	// Phase, observer hooks).
	Session = core.Session
	// Campaign is a batch of experiments with a parallelism policy.
	Campaign = core.Campaign
	// CampaignRun is one spec's outcome within a campaign.
	CampaignRun = core.CampaignRun
	// CampaignSession is a handle to an in-flight campaign.
	CampaignSession = core.CampaignSession
	// Observer receives a session's phase transitions and live samples.
	Observer = core.Observer
	// ObserverFuncs adapts plain functions to Observer.
	ObserverFuncs = core.ObserverFuncs
	// PhaseChange is one phase-transition event.
	PhaseChange = core.PhaseChange
	// Sample is one live current reading.
	Sample = core.Sample
	// LiveSummary is the streaming summary of a capture in flight
	// (running mean/std/min/max, P50/P95 estimates, charge integral),
	// carried on every Sample and readable via Session.Live.
	LiveSummary = samples.LiveSummary
	// Phase is where a running experiment currently is.
	Phase = core.Phase

	// Controller is a vantage point controller.
	Controller = controller.Controller
	// ControllerConfig describes a vantage point.
	ControllerConfig = controller.Config
	// Device is a simulated Android test device.
	Device = device.Device
	// DeviceConfig describes a test device.
	DeviceConfig = device.Config

	// Clock abstracts time; experiments run on a virtual clock.
	Clock = simclock.Clock

	// Script is an automation workload.
	Script = automation.Script
	// Driver is an automation channel bound to a device.
	Driver = automation.Driver

	// BrowserProfile is one of the study browsers' calibrated models.
	BrowserProfile = browser.Profile
	// Browser is an installed browser app instance.
	Browser = browser.Browser
	// BrowserWorkloadOptions tunes the §4.2 page-visit workload.
	BrowserWorkloadOptions = browser.WorkloadOptions

	// VPNExit is one ProtonVPN egress location.
	VPNExit = vpn.Exit
	// SpeedtestResult is one row of the paper's Table 2.
	SpeedtestResult = vpn.SpeedtestResult

	// MirrorSession is a device-mirroring session (scrcpy-like agent +
	// VNC server + noVNC GUI backend).
	MirrorSession = mirror.Session
	// LatencyProbe models the click-to-photon mirroring latency
	// measurement of §4.2.
	LatencyProbe = mirror.LatencyProbe
)

// NewLatencyProbe builds a mirroring latency probe for a client at the
// given network RTT from the vantage point.
func NewLatencyProbe(seed uint64, networkRTT time.Duration) *LatencyProbe {
	return mirror.NewLatencyProbe(seed, networkRTT)
}

// Measurement-time transports.
const (
	TransportWiFi      = core.TransportWiFi
	TransportBluetooth = core.TransportBluetooth
	TransportUSB       = core.TransportUSB
)

// Experiment phases, in execution order.
const (
	PhasePending        = core.PhasePending
	PhaseVPNUp          = core.PhaseVPNUp
	PhaseTransportArmed = core.PhaseTransportArmed
	PhaseMirrorOn       = core.PhaseMirrorOn
	PhaseMonitorArmed   = core.PhaseMonitorArmed
	PhaseWorkload       = core.PhaseWorkload
	PhaseSettle         = core.PhaseSettle
	PhaseDone           = core.PhaseDone
)

// Typed sentinel errors of the v2 experiment API; test with errors.Is.
var (
	ErrUnknownNode   = core.ErrUnknownNode
	ErrUnknownDevice = core.ErrUnknownDevice
	ErrUSBTransport  = core.ErrUSBTransport
	ErrNoWorkload    = core.ErrNoWorkload
	ErrCanceled      = core.ErrCanceled
	// ErrNodeLost reports a remote run failed by vantage-point loss
	// after the scheduler's failover budget was spent.
	ErrNodeLost = core.ErrNodeLost
)

// VirtualClock returns a deterministic simulated clock starting at the
// platform epoch: experiments over minutes of simulated time finish in
// milliseconds.
func VirtualClock() *simclock.Virtual { return simclock.NewVirtual() }

// RealClock returns the wall clock, for running daemons.
func RealClock() Clock { return simclock.Real() }

// NewPlatform assembles an empty platform (access server, DNS zone,
// certificate authority).
func NewPlatform(clock Clock, seed uint64) (*Platform, error) {
	return core.NewPlatform(clock, seed)
}

// NewController assembles a vantage point controller.
func NewController(clock Clock, cfg ControllerConfig) (*Controller, error) {
	return controller.New(clock, cfg)
}

// NewDevice builds a test device (defaults: a Samsung J7 Duo running
// Android 8.0 with a 3000 mAh battery).
func NewDevice(clock Clock, cfg DeviceConfig) (*Device, error) {
	return device.New(clock, cfg)
}

// NewScript starts an empty automation script.
func NewScript(name string) *Script { return automation.NewScript(name) }

// BrowserProfiles returns the four §4.2 study browsers: Brave, Chrome,
// Edge, Firefox.
func BrowserProfiles() []BrowserProfile { return browser.Profiles() }

// FindBrowserProfile looks a study browser up by name.
func FindBrowserProfile(name string) (BrowserProfile, error) {
	return browser.FindProfile(name)
}

// NewBrowser instantiates a browser app for installation on a device.
// The controller's AP is the browser's network; region follows the
// controller's VPN state.
func NewBrowser(prof BrowserProfile, ctl *Controller) *Browser {
	return browser.New(prof, ctl.AP(), func() string { return ctl.Region() })
}

// BuildBrowserWorkload assembles the paper's page-visit workload script.
func BuildBrowserWorkload(drv Driver, pkg string, opts BrowserWorkloadOptions) *Script {
	return browser.BuildWorkload(drv, pkg, opts)
}

// NewsSites returns the workload's 10 news pages.
func NewsSites() []string { return browser.NewsSites() }

// VideoPlayerPackage is the bundled mp4 player's package name.
const VideoPlayerPackage = video.PackageName

// NewVideoPlayer builds the mp4 playback app used by the accuracy
// evaluation; path is the media's sdcard location.
func NewVideoPlayer(path string) *video.Player { return video.NewPlayer(path) }

// SampleMP4 generates placeholder mp4 bytes for pushing to a device.
func SampleMP4(n int) []byte { return video.SampleMP4(n) }

// VPNExits returns the five ProtonVPN locations of §4.3.
func VPNExits() []VPNExit { return vpn.Exits() }

// DeploymentConfig tunes NewDeployment.
type DeploymentConfig struct {
	// Seed drives every stochastic model (default 2019).
	Seed uint64
	// NodeName is the vantage point identifier (default "node1").
	NodeName string
	// InstallBrowsers installs the four study browsers (default true —
	// set SkipBrowsers to opt out).
	SkipBrowsers bool
	// VideoPath, when non-empty, pushes a sample mp4 there and installs
	// the player.
	VideoPath string
}

// Deployment is a ready-to-measure single-vantage-point platform: the
// paper's first deployment (one Monsoon, one J7 Duo, one Pi).
type Deployment struct {
	Platform     *Platform
	Controller   *Controller
	Device       *Device
	NodeName     string
	DeviceSerial string
	FQDN         string

	clock Clock
}

// VantagePointConfig tunes NewVantagePoint.
type VantagePointConfig struct {
	// Name is the vantage point identifier (required).
	Name string
	// Seed drives the controller's and device's stochastic models.
	Seed uint64
	// Addr is the DNS registration address (default a documentation
	// address).
	Addr string
	// SkipBrowsers leaves the four study browsers uninstalled.
	SkipBrowsers bool
	// VideoPath, when non-empty, pushes a sample mp4 there and installs
	// the player.
	VideoPath string
}

// NewVantagePoint assembles one simulated vantage point — controller,
// test device, installed study apps — and joins it to the platform via
// the §3.4 workflow. It is the shared node-assembly path behind
// NewDeployment and multi-node daemons/tests (blab-access -sim).
func NewVantagePoint(clock Clock, p *Platform, cfg VantagePointConfig) (*Controller, *Device, string, error) {
	if cfg.Name == "" {
		return nil, nil, "", fmt.Errorf("batterylab: vantage point needs a name")
	}
	if cfg.Addr == "" {
		cfg.Addr = "198.51.100.7:2222"
	}
	ctl, err := controller.New(clock, controller.Config{Name: cfg.Name, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, "", err
	}
	dev, err := device.New(clock, device.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, nil, "", err
	}
	if err := ctl.AttachDevice(dev); err != nil {
		return nil, nil, "", err
	}
	fqdn, err := p.Join(ctl, cfg.Addr)
	if err != nil {
		return nil, nil, "", err
	}
	if !cfg.SkipBrowsers {
		for _, prof := range browser.Profiles() {
			if err := dev.Install(NewBrowser(prof, ctl)); err != nil {
				return nil, nil, "", err
			}
		}
	}
	if cfg.VideoPath != "" {
		if err := dev.Storage().Push(cfg.VideoPath, video.SampleMP4(4<<20)); err != nil {
			return nil, nil, "", err
		}
		if err := dev.Install(video.NewPlayer(cfg.VideoPath)); err != nil {
			return nil, nil, "", err
		}
	}
	return ctl, dev, fqdn, nil
}

// NewDeployment assembles and joins a complete vantage point.
func NewDeployment(clock Clock, cfg DeploymentConfig) (*Deployment, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2019
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "node1"
	}
	plat, err := core.NewPlatform(clock, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ctl, dev, fqdn, err := NewVantagePoint(clock, plat, VantagePointConfig{
		Name:         cfg.NodeName,
		Seed:         cfg.Seed,
		SkipBrowsers: cfg.SkipBrowsers,
		VideoPath:    cfg.VideoPath,
	})
	if err != nil {
		return nil, err
	}
	return &Deployment{
		Platform:     plat,
		Controller:   ctl,
		Device:       dev,
		NodeName:     cfg.NodeName,
		DeviceSerial: dev.Serial(),
		FQDN:         fqdn,
		clock:        clock,
	}, nil
}

// RunFor lets dur of deployment time pass: on a virtual clock it
// advances the simulation; on the real clock it sleeps.
func (d *Deployment) RunFor(dur time.Duration) {
	if v, ok := d.clock.(*simclock.Virtual); ok {
		v.Advance(dur)
		return
	}
	d.clock.Sleep(dur)
}
