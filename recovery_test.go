package batterylab

// End-to-end crash recovery: an access server with an attached
// WAL+snapshot store dies mid-campaign; a fresh process (fresh virtual
// clock, fresh simulated vantage points, same store directory)
// replays the log, reconstructs every map, routes the interrupted
// builds through the failover machinery and completes the campaign.

import (
	"errors"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// recoveryLab is a two-node platform with a persistent access server.
type recoveryLab struct {
	clk     *simclock.Virtual
	plat    *Platform
	srv     *accessserver.Server
	st      *store.Store
	devices map[string]string
}

// newRecoveryLab assembles the platform in the documented recovery
// order: spec backend (NewPlatform), vantage points, then AttachStore.
func newRecoveryLab(t *testing.T, dir string) (*recoveryLab, accessserver.RecoveryStats) {
	t.Helper()
	clk := VirtualClock()
	plat, err := NewPlatform(clk, 2019)
	if err != nil {
		t.Fatal(err)
	}
	l := &recoveryLab{clk: clk, plat: plat, srv: plat.Access, devices: map[string]string{}}
	for i, name := range []string{"node1", "node2"} {
		_, dev, _, err := NewVantagePoint(clk, plat, VantagePointConfig{
			Name: name, Seed: 100 + uint64(i), SkipBrowsers: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		l.devices[name] = dev.Serial()
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.st = st
	stats, err := l.srv.AttachStore(st)
	if err != nil {
		t.Fatal(err)
	}
	return l, stats
}

func (l *recoveryLab) idleSpec(node string) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: node, Device: l.devices[node],
		Monitor:  api.MonitorSpec{SampleRateHz: 100},
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 120000}},
	}
}

// drive advances the virtual clock until every build is terminal.
func (l *recoveryLab) drive(t *testing.T, builds []*accessserver.Build) {
	t.Helper()
	deadline := l.clk.Now().Add(4 * time.Hour)
	for {
		done := true
		for _, b := range builds {
			switch b.State() {
			case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			default:
				done = false
			}
		}
		if done {
			return
		}
		next, ok := l.clk.NextDeadline()
		if !ok {
			t.Fatalf("stalled: no pending timers, %d queued", l.srv.QueueLength())
		}
		if next.After(deadline) {
			t.Fatalf("did not finish within the simulated budget")
		}
		l.clk.RunUntil(next)
	}
}

// TestCampaignSurvivesServerCrash is the acceptance scenario: kill the
// access server mid-campaign, restart from snapshot+WAL, and the
// campaign — including the builds that were mid-measurement at the
// crash — runs to completion on the recovered server.
func TestCampaignSurvivesServerCrash(t *testing.T) {
	dir := t.TempDir()
	l1, _ := newRecoveryLab(t, dir)
	boss, err := l1.srv.Users.Add("boss", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}

	specs := api.CampaignSpec{Experiments: []api.ExperimentSpec{
		l1.idleSpec("node1"), l1.idleSpec("node2"),
		l1.idleSpec("node1"), l1.idleSpec("node2"),
	}}
	campID, builds, err := l1.srv.SubmitCampaign(boss, specs)
	if err != nil {
		t.Fatal(err)
	}
	// 30 simulated seconds in: the first two builds are mid-measurement,
	// the other two queued behind the per-device locks.
	l1.clk.Advance(30 * time.Second)
	running, queued := 0, 0
	for _, b := range builds {
		switch b.State() {
		case accessserver.StateRunning:
			running++
		case accessserver.StateQueued:
			queued++
		}
	}
	if running == 0 || queued == 0 {
		t.Fatalf("want a mix of running and queued at the crash, got %d running %d queued", running, queued)
	}
	l1.st.Close() // crash: the whole first process is abandoned here

	// Restart. Same store directory; everything else is rebuilt from
	// scratch (fresh clock, fresh simulated hardware with the same
	// seeds, hence the same device serials).
	l2, stats := newRecoveryLab(t, dir)
	if stats.Resumed != running || stats.Requeued != queued {
		t.Fatalf("recovery stats = %+v, want %d resumed and %d requeued", stats, running, queued)
	}
	// The bootstrap user survives with their original token.
	if _, err := l2.srv.Users.Authenticate(boss.Token); err != nil {
		t.Fatalf("boss token did not survive the restart: %v", err)
	}

	ids, err := l2.srv.CampaignBuildIDs(campID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(builds) {
		t.Fatalf("campaign recovered %d builds, want %d", len(ids), len(builds))
	}
	var members []*accessserver.Build
	for _, id := range ids {
		b, err := l2.srv.Build(id)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Recovered() {
			t.Fatalf("build %d not marked recovered", id)
		}
		members = append(members, b)
	}
	// Interrupted builds carry the restart failover on their feed.
	sawFailover := 0
	for _, b := range members {
		evs, _, _ := b.Feed().EventsSince(0)
		for _, e := range evs {
			if e.Phase == api.EventFailover {
				sawFailover++
				break
			}
		}
	}
	if sawFailover != running {
		t.Fatalf("%d builds carry a failover event, want %d (the interrupted ones)", sawFailover, running)
	}

	l2.drive(t, members)
	for i, b := range members {
		if b.State() != accessserver.StateSuccess {
			t.Fatalf("post-restart build %d state = %v (%v)", i, b.State(), b.Err())
		}
	}
}

// TestRecoveryDeterministic: the same crash/restart sequence replayed
// on two labs built from identical store bytes finishes at the same
// simulated instant with identical states — recovery stays inside the
// virtual clock's determinism contract.
func TestRecoveryDeterministic(t *testing.T) {
	run := func() (time.Time, []accessserver.BuildState) {
		dir := t.TempDir()
		l1, _ := newRecoveryLab(t, dir)
		boss, err := l1.srv.Users.Add("boss", accessserver.RoleAdmin)
		if err != nil {
			t.Fatal(err)
		}
		specs := api.CampaignSpec{Experiments: []api.ExperimentSpec{
			l1.idleSpec("node1"), l1.idleSpec("node2"), l1.idleSpec("node1"),
		}}
		campID, _, err := l1.srv.SubmitCampaign(boss, specs)
		if err != nil {
			t.Fatal(err)
		}
		l1.clk.Advance(45 * time.Second)
		l1.st.Close()

		l2, _ := newRecoveryLab(t, dir)
		ids, err := l2.srv.CampaignBuildIDs(campID)
		if err != nil {
			t.Fatal(err)
		}
		var members []*accessserver.Build
		for _, id := range ids {
			b, err := l2.srv.Build(id)
			if err != nil {
				t.Fatal(err)
			}
			members = append(members, b)
		}
		l2.drive(t, members)
		var states []accessserver.BuildState
		for _, b := range members {
			states = append(states, b.State())
		}
		return l2.clk.Now(), states
	}
	atA, statesA := run()
	atB, statesB := run()
	if !atA.Equal(atB) {
		t.Fatalf("recovered campaigns finished at %v vs %v", atA, atB)
	}
	for i := range statesA {
		if statesA[i] != statesB[i] {
			t.Fatalf("state divergence at build %d: %v vs %v", i, statesA[i], statesB[i])
		}
	}
}

// TestInsufficientCreditsLocal: the typed §5 rejection fires through
// the in-process API once enforcement is on.
func TestInsufficientCreditsLocal(t *testing.T) {
	clk := VirtualClock()
	plat, err := NewPlatform(clk, 2019)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := NewVantagePoint(clk, plat, VantagePointConfig{
		Name: "node1", Seed: 7, SkipBrowsers: true,
	}); err != nil {
		t.Fatal(err)
	}
	srv := plat.Access
	srv.SetCreditEnforcement(true)
	exp, err := srv.Users.Add("poor", accessserver.RoleExperimenter)
	if err != nil {
		t.Fatal(err)
	}
	devs, err := srv.Nodes.Devices("node1")
	if err != nil || len(devs) == 0 {
		t.Fatalf("devices: %v %v", devs, err)
	}
	spec := api.ExperimentSpec{
		Node: "node1", Device: devs[0],
		Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 60000}},
	}
	if _, err := srv.SubmitSpec(exp, spec); !errors.Is(err, accessserver.ErrInsufficientCredits) {
		t.Fatalf("submit err = %v, want ErrInsufficientCredits", err)
	}
	// Contribution makes the member solvent again.
	srv.Ledger.CreditContribution("poor", "node1", time.Hour)
	if _, err := srv.SubmitSpec(exp, spec); err != nil {
		t.Fatalf("funded submit: %v", err)
	}
}
