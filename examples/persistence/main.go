// Persistence tour: the access server survives a crash mid-campaign.
//
// Process one attaches a WAL+snapshot store, enforces the §5 credit
// economy, and starts a four-run idle campaign — then "crashes" 30
// simulated seconds in, with two builds mid-measurement and two
// queued. Process two rebuilds the platform from scratch (fresh
// virtual clock, fresh simulated vantage points with the same seeds)
// over the same store directory: replaying snapshot+WAL brings back
// the users (tokens intact), the ledger, the campaign and every
// build; the interrupted runs go through the failover machinery and
// the campaign completes. Entirely deterministic under the virtual
// clock.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/accessserver/store"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// boot assembles a two-node platform and attaches the store — the
// documented recovery order: spec backend, nodes, then AttachStore.
func boot(dir string) (*simclock.Virtual, *accessserver.Server, map[string]string, *store.Store, accessserver.RecoveryStats) {
	clock := batterylab.VirtualClock()
	plat, err := batterylab.NewPlatform(clock, 2019)
	if err != nil {
		log.Fatal(err)
	}
	devices := map[string]string{}
	for i, name := range []string{"node1", "node2"} {
		_, dev, _, err := batterylab.NewVantagePoint(clock, plat, batterylab.VantagePointConfig{
			Name: name, Seed: 100 + uint64(i), SkipBrowsers: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		devices[name] = dev.Serial()
	}
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := plat.Access.AttachStore(st)
	if err != nil {
		log.Fatal(err)
	}
	return clock, plat.Access, devices, st, stats
}

func drive(clock *simclock.Virtual, builds []*accessserver.Build) {
	for {
		done := true
		for _, b := range builds {
			switch b.State() {
			case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			default:
				done = false
			}
		}
		if done {
			return
		}
		next, ok := clock.NextDeadline()
		if !ok {
			log.Fatal("stalled: no pending timers")
		}
		clock.RunUntil(next)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "blab-persistence")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- process one: submit, run a bit, crash ----
	clock1, srv1, devices, st1, _ := boot(dir)
	srv1.SetCreditEnforcement(true)
	boss, err := srv1.Users.Add("boss", accessserver.RoleExperimenter)
	if err != nil {
		log.Fatal(err)
	}
	srv1.Ledger.Grant("boss", 100, "starter grant")

	spec := func(node string) api.ExperimentSpec {
		return api.ExperimentSpec{
			Node: node, Device: devices[node],
			Monitor:  api.MonitorSpec{SampleRateHz: 100},
			Workload: api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 120000}},
		}
	}
	campID, builds, err := srv1.SubmitCampaign(boss, api.CampaignSpec{Experiments: []api.ExperimentSpec{
		spec("node1"), spec("node2"), spec("node1"), spec("node2"),
	}})
	if err != nil {
		log.Fatal(err)
	}
	clock1.Advance(30 * time.Second)
	fmt.Printf("process 1: campaign %d, 30s in:\n", campID)
	for i, b := range builds {
		fmt.Printf("  build %d: %-7s on %s\n", i+1, b.State(), b.NodeName())
	}
	st1.Close()
	fmt.Println("process 1: CRASH (store closed, everything in memory lost)")

	// ---- process two: recover and finish ----
	// Enforcement is configuration, not state: each process turns it on
	// (the daemon's -credits flag); the balances themselves replay.
	clock2, srv2, _, _, stats := boot(dir)
	srv2.SetCreditEnforcement(true)
	fmt.Printf("process 2: recovered %d users, %d builds (%d requeued, %d resumed via failover), %d ledger entries\n",
		stats.Users, stats.Builds, stats.Requeued, stats.Resumed, stats.Ledger)
	if _, err := srv2.Users.Authenticate(boss.Token); err != nil {
		log.Fatal("boss token lost: ", err)
	}
	fmt.Println("process 2: boss token still valid")

	ids, err := srv2.CampaignBuildIDs(campID)
	if err != nil {
		log.Fatal(err)
	}
	var members []*accessserver.Build
	for _, id := range ids {
		b, err := srv2.Build(id)
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, b)
	}
	drive(clock2, members)
	fmt.Println("process 2: campaign completed after restart:")
	for i, b := range members {
		retried := ""
		if b.Retries() > 0 {
			retried = fmt.Sprintf(" (failover retry %d)", b.Retries())
		}
		fmt.Printf("  build %d: %-7s on %s%s\n", i+1, b.State(), b.NodeName(), retried)
	}
	fmt.Printf("ledger: boss balance %.1f after charges\n", srv2.Ledger.Balance("boss"))
}
