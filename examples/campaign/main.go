// Campaign demonstrates the v2 batch API at platform scale: six browser
// measurements across two vantage points submitted as one campaign. The
// scheduler runs the two nodes concurrently in simulated time while each
// node's runs stay serialized on its Monsoon — the makespan is roughly
// half of what a for-loop around RunExperiment would pay.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"batterylab"
)

func main() {
	clock := batterylab.VirtualClock()
	plat, err := batterylab.NewPlatform(clock, 2019)
	if err != nil {
		log.Fatal(err)
	}

	// Two vantage points, one device each — the paper's federation,
	// built long-hand.
	type vp struct {
		name   string
		serial string
	}
	var vps []vp
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("node%d", i+1)
		ctl, err := batterylab.NewController(clock, batterylab.ControllerConfig{Name: name, Seed: 2019 + uint64(i)})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := batterylab.NewDevice(clock, batterylab.DeviceConfig{Seed: 100 + uint64(i)})
		if err != nil {
			log.Fatal(err)
		}
		if err := ctl.AttachDevice(dev); err != nil {
			log.Fatal(err)
		}
		for _, prof := range batterylab.BrowserProfiles() {
			if err := dev.Install(batterylab.NewBrowser(prof, ctl)); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := plat.Join(ctl, fmt.Sprintf("198.51.100.%d:2222", 10+i)); err != nil {
			log.Fatal(err)
		}
		vps = append(vps, vp{name: name, serial: dev.Serial()})
	}

	// Three runs per node: Brave, Chrome, Edge visiting three pages.
	var specs []batterylab.ExperimentSpec
	browsers := []string{"Brave", "Chrome", "Edge"}
	for _, v := range vps {
		for _, name := range browsers {
			prof, err := batterylab.FindBrowserProfile(name)
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, batterylab.ExperimentSpec{
				Node: v.name, Device: v.serial, SampleRate: 250,
				Workload: func(drv batterylab.Driver) *batterylab.Script {
					return batterylab.BuildBrowserWorkload(drv, prof.Package,
						batterylab.BrowserWorkloadOptions{Pages: batterylab.NewsSites()[:3]})
				},
			})
		}
	}

	start := clock.Now()
	runs, err := plat.RunCampaign(context.Background(), batterylab.Campaign{Specs: specs})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("campaign of", len(runs), "runs across", len(vps), "vantage points:")
	var sequential time.Duration
	for i, run := range runs {
		if run.Err != nil {
			fmt.Printf("  %s %-7s FAILED: %v\n", run.Spec.Node, browsers[i%3], run.Err)
			continue
		}
		sequential += run.Result.Duration
		fmt.Printf("  %s %-7s %6.2f mAh in %s (started %s)\n",
			run.Spec.Node, browsers[i%3], run.Result.EnergyMAH,
			run.Result.Duration.Round(time.Second),
			run.Started.Format("15:04:05"))
	}
	makespan := clock.Now().Sub(start)
	fmt.Printf("\nmakespan %s vs %s sequential (%.2fx concurrency win)\n",
		makespan.Round(time.Second), sequential.Round(time.Second),
		sequential.Seconds()/makespan.Seconds())
}
