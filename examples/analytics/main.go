// Trace analytics tour: run one experiment on a simulated deployment,
// then query the server-side analytics engine instead of downloading
// the trace — whole-run rollups, 2-second windowed means and energy,
// and a repeat query answered bit-identically from the result cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"batterylab"
	"batterylab/internal/api"
	"batterylab/internal/remote"
)

func main() {
	// One simulated vantage point on a virtual clock, served over HTTP.
	clock := batterylab.VirtualClock()
	dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	token, err := batterylab.NewAPIToken(dep.Platform, "alice", "experimenter")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, dep.Platform.Access.Handler())
	stop := make(chan struct{})
	defer close(stop)
	go batterylab.DriveBuilds(clock, dep.Platform, stop)

	client, err := remote.Dial("http://"+ln.Addr().String(), token)
	if err != nil {
		log.Fatal(err)
	}

	// One browser run: the build saves its full power trace server-side
	// as the current.trace artifact.
	ctx := context.Background()
	sess, err := client.StartExperiment(ctx, api.ExperimentSpec{
		Node: dep.NodeName, Device: dep.DeviceSerial,
		Monitor: api.MonitorSpec{SampleRateHz: 1000},
		Workload: api.WorkloadSpec{
			Name:   "browser",
			Params: api.Params{"browser": "Brave", "pages": 2, "scrolls": 4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("build %d finished: %d samples, %.4f mAh\n",
		sess.Build(), res.Current.Len(), res.EnergyMAH)

	// The rollup: every aggregate over the whole trace, computed where
	// the artifact lives. The energy integral is bit-identical to the
	// run summary — same aggregators, same order.
	rollup, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollup     : mean %.2f mA  p50 %.2f  p95 %.2f  energy %.4f mAh (bit-identical: %v)\n",
		*rollup.Total.MeanMA, *rollup.Total.P50MA, *rollup.Total.P95MA,
		*rollup.Total.EnergyMAH, *rollup.Total.EnergyMAH == res.EnergyMAH)

	// Windowed: one bucket per 2 s of the run, only the fields asked
	// for. A dashboard plots this — kilobytes instead of the trace.
	windowed, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{
		WindowNS: int64(2 * time.Second),
		Fields:   []string{"mean", "energy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed   : %d buckets of %s\n", len(windowed.Buckets), 2*time.Second)
	for i, b := range windowed.Buckets {
		if i >= 5 {
			fmt.Printf("  … %d more\n", len(windowed.Buckets)-i)
			break
		}
		fmt.Printf("  [%5.1fs – %5.1fs]  mean %7.2f mA  energy %.5f mAh  (%d samples)\n",
			time.Duration(b.StartNS).Seconds(), time.Duration(b.EndNS).Seconds(),
			*b.MeanMA, *b.EnergyMAH, b.Samples)
	}

	// Repeat the query: the server memoizes the marshaled body, so the
	// second answer is a cache hit — the same bytes, no artifact decode.
	again, err := client.Analytics(ctx, sess.Build(), api.AnalyticsQuery{
		WindowNS: int64(2 * time.Second),
		Fields:   []string{"mean", "energy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	a, _ := json.Marshal(windowed)
	b, _ := json.Marshal(again)
	fmt.Printf("repeat query: served from the analytics cache, bit-identical: %v\n", bytes.Equal(a, b))
}
