// Remote execution tour: serve a simulated BatteryLab deployment over
// the v1 HTTP API, connect the location-transparent client to it, and
// run the same declarative spec remotely and locally — identical
// energy figures either way, which is the point: code written against
// batterylab.Backend does not care where the hardware lives.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"batterylab"
)

func main() {
	// The "lab": one simulated vantage point on a virtual clock, its
	// access server listening on a real TCP port.
	clock := batterylab.VirtualClock()
	dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	token, err := batterylab.NewAPIToken(dep.Platform, "alice", "experimenter")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, dep.Platform.Access.Handler())

	// The server owns simulated time: DriveBuilds advances the virtual
	// clock while builds are in flight (a real deployment runs on the
	// real clock and needs none of this).
	stop := make(chan struct{})
	defer close(stop)
	go batterylab.DriveBuilds(clock, dep.Platform, stop)

	// The "experimenter": a remote client that only knows the server's
	// URL and a token. The spec is pure data — node, device, a named
	// workload and its parameters.
	backend, err := batterylab.RemoteBackend("http://"+ln.Addr().String(), token)
	if err != nil {
		log.Fatal(err)
	}
	spec := batterylab.ExperimentSpecV1{
		Node:    dep.NodeName,
		Device:  dep.DeviceSerial,
		Monitor: batterylab.MonitorSpec{SampleRateHz: 1000},
		Workload: batterylab.WorkloadSpec{
			Name:   "browser",
			Params: batterylab.Params{"browser": "Brave", "pages": 2, "scrolls": 4},
		},
	}

	ctx := context.Background()
	fmt.Println("submitting spec to", "http://"+ln.Addr().String())
	sess, err := backend.StartExperimentSpec(ctx, spec, batterylab.ObserverFuncs{
		Phase: func(e batterylab.PhaseChange) {
			if e.Step == "" {
				fmt.Printf("  phase: %s\n", e.Phase)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	remoteRes, err := sess.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote run : %.4f mAh over %s (%d samples)\n",
		remoteRes.EnergyMAH, remoteRes.Duration, remoteRes.Current.Len())

	// The control: the identical spec on an identical local deployment,
	// through the same Backend interface.
	dep2, err := batterylab.NewDeployment(batterylab.VirtualClock(), batterylab.DeploymentConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	localRes, err := mustWait(batterylab.LocalBackend(dep2.Platform).StartExperimentSpec(ctx, spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local run  : %.4f mAh over %s (%d samples)\n",
		localRes.EnergyMAH, localRes.Duration, localRes.Current.Len())
	if remoteRes.EnergyMAH == localRes.EnergyMAH {
		fmt.Println("location transparency: identical energy, bit for bit")
	}
}

func mustWait(s batterylab.ExperimentHandle, err error) (*batterylab.Result, error) {
	if err != nil {
		return nil, err
	}
	return s.Wait(context.Background())
}
