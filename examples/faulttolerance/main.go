// Fault tolerance tour: a measurement campaign across two vantage
// points survives one of them dying mid-run. Both nodes are
// health-monitored (heartbeat probes on the platform clock); 30
// seconds into the campaign the failure injector kills node2. Its
// in-flight build hangs, the lease watchdog reclaims it, and fallback
// placement requeues it — plus node2's still-queued work — onto the
// surviving node. The whole story runs on the virtual clock, so the
// sequence of health transitions, failovers and completions is
// deterministic down to the timestamp.
package main

import (
	"fmt"
	"log"
	"time"

	"batterylab"
	"batterylab/internal/accessserver"
	"batterylab/internal/api"
)

func main() {
	clock := batterylab.VirtualClock()
	plat, err := batterylab.NewPlatform(clock, 2019)
	if err != nil {
		log.Fatal(err)
	}
	srv := plat.Access

	// Two vantage points; node2 goes behind the failure injector.
	devices := map[string]string{}
	for i, name := range []string{"node1", "node2"} {
		_, dev, _, err := batterylab.NewVantagePoint(clock, plat, batterylab.VantagePointConfig{
			Name: name, Seed: 100 + uint64(i), SkipBrowsers: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		devices[name] = dev.Serial()
	}
	inner, err := srv.Nodes.Get("node2")
	if err != nil {
		log.Fatal(err)
	}
	srv.Nodes.Remove("node2")
	flaky := accessserver.NewFlakyNode(inner)
	if err := srv.Nodes.Register(flaky); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"node1", "node2"} {
		if err := srv.MonitorNode(name); err != nil {
			log.Fatal(err)
		}
	}
	admin, err := srv.Users.Add("boss", accessserver.RoleAdmin)
	if err != nil {
		log.Fatal(err)
	}

	// Four 2-minute idle measurements, two per node, all willing to
	// move to a surviving node if theirs dies.
	spec := func(node string) api.ExperimentSpec {
		return api.ExperimentSpec{
			Node: node, Device: devices[node],
			Monitor:     api.MonitorSpec{SampleRateHz: 100},
			Workload:    api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 120000}},
			Constraints: api.ConstraintsSpec{AllowFallback: true},
		}
	}
	_, builds, err := srv.SubmitCampaign(admin, api.CampaignSpec{
		Experiments: []api.ExperimentSpec{
			spec("node1"), spec("node2"), spec("node1"), spec("node2"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign submitted: %d builds across 2 vantage points\n", len(builds))

	start := clock.Now()
	clock.AfterFunc(30*time.Second, func() {
		flaky.Kill()
		fmt.Printf("t=%-6s node2 killed (heartbeats stop)\n", clock.Now().Sub(start))
	})

	// Drive simulated time event-by-event until every build settles,
	// narrating health transitions as they happen.
	lastHealth := map[string]string{}
	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	for {
		done := true
		for _, b := range builds {
			if !terminal(b) {
				done = false
			}
		}
		if done {
			break
		}
		next, ok := clock.NextDeadline()
		if !ok {
			log.Fatal("campaign stalled")
		}
		clock.RunUntil(next)
		for _, name := range []string{"node1", "node2"} {
			h := srv.NodeHealth(name).Health.String()
			if lastHealth[name] != h {
				fmt.Printf("t=%-6s %s is %s\n", clock.Now().Sub(start), name, h)
				lastHealth[name] = h
			}
		}
	}

	fmt.Printf("campaign finished at t=%s\n\n", clock.Now().Sub(start))
	for i, b := range builds {
		detail := ""
		if b.Retries() > 0 {
			detail = fmt.Sprintf(" after %d failover(s)", b.Retries())
		}
		fmt.Printf("  build %d: %-8s on %s (attempt %d)%s\n",
			i+1, b.State(), b.NodeName(), b.Attempts(), detail)
	}
	fmt.Println()
	for _, b := range builds {
		evs, _, _ := b.Feed().EventsSince(0)
		for _, e := range evs {
			if e.Phase == api.EventFailover {
				fmt.Printf("  feed: build %d failover — %s\n", e.Build, e.Error)
			}
		}
	}
	fmt.Println("\nall measurements completed on surviving hardware — no build was lost")
}
