// Quickstart: assemble a single-vantage-point BatteryLab deployment on a
// virtual clock, run one battery measurement of a browsing workload, and
// print the trace statistics — the five-minute tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"batterylab"
)

func main() {
	// A Deployment is the paper's first vantage point: an access server
	// plus a controller hosting a Samsung J7 Duo wired to a simulated
	// Monsoon through the relay switch.
	clock := batterylab.VirtualClock()
	dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vantage point %s hosting device %s\n", dep.FQDN, dep.DeviceSerial)

	// The workload: Brave visiting three news pages, scrolling around
	// each — scripted exactly like the paper's bash-over-ADB automation.
	prof, err := batterylab.FindBrowserProfile("Brave")
	if err != nil {
		log.Fatal(err)
	}
	// The v2 session API: StartExperiment returns a handle immediately;
	// an observer watches the run reach each phase of the §3 pipeline.
	ctx := context.Background()
	sess, err := dep.Platform.StartExperiment(ctx, batterylab.ExperimentSpec{
		Node:       dep.NodeName,
		Device:     dep.DeviceSerial,
		SampleRate: 1000,
		Workload: func(drv batterylab.Driver) *batterylab.Script {
			return batterylab.BuildBrowserWorkload(drv, prof.Package,
				batterylab.BrowserWorkloadOptions{
					Pages:   batterylab.NewsSites()[:3],
					Scrolls: 6,
				})
		},
	}, batterylab.ObserverFuncs{
		Phase: func(e batterylab.PhaseChange) {
			if e.Step == "" {
				fmt.Printf("  phase: %s\n", e.Phase)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	cdf, err := res.Current.CDF()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %s of battery activity:\n", res.Duration.Round(time.Second))
	fmt.Printf("  current    p50 = %6.1f mA, p90 = %6.1f mA\n", cdf.Median(), cdf.Quantile(0.9))
	fmt.Printf("  discharge      = %6.2f mAh\n", res.EnergyMAH)
	fmt.Printf("  device CPU p50 = %6.1f %%\n", res.DeviceCPU.Summary().Median)
	fmt.Printf("  battery left   = %6.1f %%\n", 100*dep.Device.Battery().SoC())
}
