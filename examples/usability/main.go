// Usability demonstrates BatteryLab's remote-control path (§3.2): a
// device-mirroring session whose noVNC-style GUI backend is served over
// real HTTP, driven by real POSTs — the pipeline a crowdsourced tester's
// browser would use — plus the §4.2 click-to-photon latency measurement.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"batterylab"
)

func main() {
	clock := batterylab.VirtualClock()
	dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ctl, serial := dep.Controller, dep.DeviceSerial

	// Mirroring needs ADB; arm the WiFi transport like a measurement
	// session would.
	if err := ctl.ADB().EnableTCPIP(serial); err != nil {
		log.Fatal(err)
	}
	if _, err := ctl.Exec("adb_transport", serial, "wifi"); err != nil {
		log.Fatal(err)
	}

	// Activate mirroring via the Table 1 API and serve the GUI backend.
	if _, err := ctl.DeviceMirroring(serial); err != nil {
		log.Fatal(err)
	}
	sess, err := ctl.MirrorSession(serial)
	if err != nil {
		log.Fatal(err)
	}
	gui := httptest.NewServer(sess.GUIHandler())
	defer gui.Close()
	fmt.Printf("mirroring %s; GUI backend at %s\n", serial, gui.URL)

	// A tester interacts through the browser: launch Brave by package,
	// type a URL, scroll — all through the GUI's REST input endpoint.
	prof, _ := batterylab.FindBrowserProfile("Brave")
	if _, err := ctl.ExecuteADB(serial, "am start -n "+prof.Package+"/.Main"); err != nil {
		log.Fatal(err)
	}
	inputs := []string{
		`{"type":"text","text":"bbc.com"}`,
		`{"type":"scroll","down":true}`,
		`{"type":"scroll","down":false}`,
		`{"type":"tap","x":360,"y":640}`,
	}
	for _, body := range inputs {
		resp, err := http.Post(gui.URL+"/api/input", "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("input %s: %s", body, resp.Status)
		}
		// Let the device render between events.
		dep.RunFor(2 * time.Second)
	}

	// Stream accounting: the agent has been encoding all along.
	dep.RunFor(30 * time.Second)
	resp, err := http.Get(gui.URL + "/api/session")
	if err != nil {
		log.Fatal(err)
	}
	state, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("session state: %s", state)

	// The §4.2 responsiveness measurement: 40 co-located trials.
	probe := batterylab.NewLatencyProbe(3, time.Millisecond)
	samples := probe.Measure(40)
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	fmt.Printf("click-to-photon latency over %d trials: %.2f s (paper: 1.44 s)\n",
		len(samples), mean)
}
