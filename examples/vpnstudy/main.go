// Vpnstudy reproduces the paper's location study (§4.3) at interactive
// scale: it characterizes the five ProtonVPN exits with a speedtest
// (Table 2), then measures Brave and Chrome energy through each tunnel
// (Figure 6), surfacing Chrome's dip at the Japanese exit where its ad
// payloads shrink.
package main

import (
	"context"
	"fmt"
	"log"

	"batterylab"
)

func main() {
	clock := batterylab.VirtualClock()
	dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1 — Table 2: speedtest through every exit.
	fmt.Println("ProtonVPN exits as seen from the vantage point:")
	fmt.Printf("  %-14s %-14s %8s %8s %9s\n", "country", "server", "D(Mbps)", "U(Mbps)", "RTT(ms)")
	rows, err := dep.Controller.VPN().Table2()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-14s %-14s %8.2f %8.2f %9.1f\n",
			r.Country, r.Location, r.DownMbps, r.UpMbps, r.LatencyMS)
	}

	// Part 2 — Figure 6: browser energy per location.
	fmt.Println("\nBrave and Chrome energy through each tunnel (3 pages):")
	fmt.Printf("  %-14s %12s %12s\n", "location", "Brave (mAh)", "Chrome (mAh)")
	for _, exit := range batterylab.VPNExits() {
		var energies []float64
		for _, name := range []string{"Brave", "Chrome"} {
			prof, err := batterylab.FindBrowserProfile(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := dep.Platform.RunExperiment(context.Background(), batterylab.ExperimentSpec{
				Node:        dep.NodeName,
				Device:      dep.DeviceSerial,
				SampleRate:  250,
				VPNLocation: exit.Location,
				Workload: func(drv batterylab.Driver) *batterylab.Script {
					return batterylab.BuildBrowserWorkload(drv, prof.Package,
						batterylab.BrowserWorkloadOptions{
							Pages: batterylab.NewsSites()[:3],
						})
				},
			})
			if err != nil {
				log.Fatalf("%s@%s: %v", name, exit.Location, err)
			}
			energies = append(energies, res.EnergyMAH)
		}
		marker := ""
		if exit.CountryCode == "JP" {
			marker = "  <- Chrome's ads shrink ~20% here"
		}
		fmt.Printf("  %-14s %12.2f %12.2f%s\n", exit.Location, energies[0], energies[1], marker)
	}
	fmt.Println("\nLocation barely moves Brave; Chrome dips in Japan — the")
	fmt.Println("platform's distributed nature as a feature (§4.3).")
}
