// Browserstudy reproduces the paper's demonstration question (§4.2) at
// interactive scale: which of today's Android browsers is the most
// energy efficient? It measures Brave, Chrome, Edge and Firefox on the
// same device over repeated page-visit workloads, with and without
// device mirroring, and prints the ranking.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"batterylab"
)

const (
	repetitions = 3
	pages       = 5
)

type row struct {
	browser        string
	offMAH, offStd float64
	onMAH          float64
	mirrorExtra    float64
}

func main() {
	fmt.Println("Research question: which Android browser is the most energy efficient?")
	fmt.Printf("Workload: %d news pages x %d repetitions, mirroring off/on\n\n", pages, repetitions)

	var rows []row
	for _, prof := range batterylab.BrowserProfiles() {
		// A fresh deployment per browser keeps runs independent, like
		// re-imaging the testbed between experimenters.
		clock := batterylab.VirtualClock()
		dep, err := batterylab.NewDeployment(clock, batterylab.DeploymentConfig{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		r := row{browser: prof.Name}
		for _, mirroring := range []bool{false, true} {
			var energies []float64
			for rep := 0; rep < repetitions; rep++ {
				res, err := dep.Platform.RunExperiment(context.Background(), batterylab.ExperimentSpec{
					Node:       dep.NodeName,
					Device:     dep.DeviceSerial,
					SampleRate: 250,
					Mirroring:  mirroring,
					Workload: func(drv batterylab.Driver) *batterylab.Script {
						return batterylab.BuildBrowserWorkload(drv, prof.Package,
							batterylab.BrowserWorkloadOptions{
								Pages: batterylab.NewsSites()[:pages],
							})
					},
				})
				if err != nil {
					log.Fatalf("%s: %v", prof.Name, err)
				}
				energies = append(energies, res.EnergyMAH)
			}
			mean, std := meanStd(energies)
			if mirroring {
				r.onMAH = mean
			} else {
				r.offMAH, r.offStd = mean, std
			}
		}
		r.mirrorExtra = r.onMAH - r.offMAH
		rows = append(rows, r)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].offMAH < rows[j].offMAH })
	fmt.Printf("%-9s %14s %14s %14s\n", "browser", "discharge", "w/ mirroring", "mirror extra")
	for i, r := range rows {
		fmt.Printf("%d. %-6s %8.2f mAh %11.2f mAh %11.2f mAh\n",
			i+1, r.browser, r.offMAH, r.onMAH, r.mirrorExtra)
	}
	fmt.Printf("\n%s is the most energy-efficient; %s consumes the most —\n",
		rows[0].browser, rows[len(rows)-1].browser)
	fmt.Println("and the ordering is unchanged by mirroring, whose cost is a")
	fmt.Println("browser-independent constant (as in the paper's Figure 3).")
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	if len(xs) > 1 {
		std /= float64(len(xs) - 1)
	}
	return mean, math.Sqrt(std)
}
