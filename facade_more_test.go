package batterylab

import (
	"context"
	"testing"
	"time"
)

func TestManualAssembly(t *testing.T) {
	// The long-hand version of NewDeployment, exercising the individual
	// constructors a multi-vantage-point federation uses.
	clock := VirtualClock()
	plat, err := NewPlatform(clock, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(clock, ControllerConfig{Name: "node9", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(clock, DeviceConfig{Seed: 5, Serial: "CUSTOM01"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}
	fqdn, err := plat.Join(ctl, "203.0.113.9:2222")
	if err != nil {
		t.Fatal(err)
	}
	if fqdn != "node9.batterylab.dev" {
		t.Fatalf("fqdn = %s", fqdn)
	}
	// Install a browser via the facade helper and measure.
	prof, _ := FindBrowserProfile("Edge")
	if err := dev.Install(NewBrowser(prof, ctl)); err != nil {
		t.Fatal(err)
	}
	res, err := plat.RunExperiment(context.Background(), ExperimentSpec{
		Node: "node9", Device: "CUSTOM01", SampleRate: 100,
		Workload: func(drv Driver) *Script {
			return BuildBrowserWorkload(drv, prof.Package,
				BrowserWorkloadOptions{Pages: []string{"bbc.com"}, Scrolls: 2})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy")
	}
}

func TestVideoPlayerViaFacade(t *testing.T) {
	clock := VirtualClock()
	dep, err := NewDeployment(clock, DeploymentConfig{
		Seed: 6, SkipBrowsers: true, VideoPath: "/sdcard/clip.mp4",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Platform.RunExperiment(context.Background(), ExperimentSpec{
		Node: dep.NodeName, Device: dep.DeviceSerial, SampleRate: 200,
		Workload: func(drv Driver) *Script {
			s := NewScript("video")
			s.Add("play", 20*time.Second, func() error {
				_, err := drv.LaunchApp(VideoPlayerPackage)
				return err
			})
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	med, _ := res.Current.CDF()
	if m := med.Median(); m < 130 || m > 200 {
		t.Fatalf("video median = %.1f", m)
	}
}

func TestMirrorSessionViaFacade(t *testing.T) {
	clock := VirtualClock()
	dep, err := NewDeployment(clock, DeploymentConfig{Seed: 8, SkipBrowsers: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Controller.DeviceMirroring(dep.DeviceSerial); err != nil {
		t.Fatal(err)
	}
	var sess *MirrorSession
	sess, err = dep.Controller.MirrorSession(dep.DeviceSerial)
	if err != nil || !sess.Active() {
		t.Fatalf("session: %v, active=%v", err, sess.Active())
	}
	probe := NewLatencyProbe(1, time.Millisecond)
	if s := probe.Sample(); s < 500*time.Millisecond || s > 3*time.Second {
		t.Fatalf("latency sample = %v", s)
	}
}

func TestRealClockFacade(t *testing.T) {
	c := RealClock()
	before := time.Now()
	if c.Now().Before(before.Add(-time.Minute)) {
		t.Fatal("real clock far behind")
	}
}

func TestTransportConstants(t *testing.T) {
	if TransportWiFi != 0 {
		t.Fatal("WiFi must be the zero-value default")
	}
	if TransportWiFi == TransportBluetooth || TransportBluetooth == TransportUSB {
		t.Fatal("transport constants collide")
	}
}
