module batterylab

go 1.24
