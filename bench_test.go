package batterylab

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§4). Each benchmark runs the corresponding
// experiment at paper scale on the virtual clock and reports the
// headline quantities as custom metrics, so `go test -bench=.` prints
// the reproduction alongside wall-clock cost. cmd/blab-bench renders the
// same results as full text tables.
//
//	BenchmarkFig2Accuracy      — Fig. 2: current CDFs, 4 wiring/mirroring scenarios
//	BenchmarkFig3BrowserEnergy — Fig. 3: per-browser discharge, mirroring off/on
//	BenchmarkFig4DeviceCPU     — Fig. 4: device CPU CDFs (Brave vs Chrome)
//	BenchmarkFig5ControllerCPU — Fig. 5: controller CPU CDFs
//	BenchmarkTable2VPN         — Table 2: speedtest through 5 VPN exits
//	BenchmarkFig6VPNEnergy     — Fig. 6: energy per VPN location
//	BenchmarkSysPerf           — §4.2 system performance numbers
//	BenchmarkAblation*         — design-choice ablations (DESIGN.md)

import (
	"testing"
	"time"

	"batterylab/internal/experiments"
)

// paperOpts is the full-scale configuration (5 repetitions, 10 pages,
// 5-minute video). The monitor rate is 250 Hz for multi-run sweeps to
// bound memory; Fig. 2 uses the full 5 kHz hardware rate.
func paperOpts() experiments.Options {
	return experiments.Options{
		Seed:          2019,
		Repetitions:   5,
		Pages:         10,
		Scrolls:       8,
		SampleRate:    250,
		VideoDuration: 5 * time.Minute,
	}
}

func BenchmarkFig2Accuracy(b *testing.B) {
	opts := paperOpts()
	opts.SampleRate = 5000 // the Monsoon's full rate, as in the paper
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2Accuracy(opts)
		if err != nil {
			b.Fatal(err)
		}
		gap, err := experiments.SummarizeFig2(rows)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gap.MedianNoMirror, "median-mA")
		b.ReportMetric(gap.MirrorLiftMA, "mirror-lift-mA")
		b.ReportMetric(gap.DirectRelayKS, "direct-relay-KS")
	}
}

func BenchmarkFig3BrowserEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3BrowserEnergy(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		f := experiments.SummarizeFig3(rows)
		for _, r := range rows {
			switch r.Browser {
			case "Brave":
				b.ReportMetric(r.MirrorOff.Mean, "brave-mAh")
			case "Firefox":
				b.ReportMetric(r.MirrorOff.Mean, "firefox-mAh")
			}
		}
		b.ReportMetric(f.ExtraSpreadMAH, "mirror-extra-spread-mAh")
	}
}

func BenchmarkFig4DeviceCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4DeviceCPU(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Mirroring {
				switch r.Browser {
				case "Brave":
					b.ReportMetric(r.CDF.Median(), "brave-cpu-p50")
				case "Chrome":
					b.ReportMetric(r.CDF.Median(), "chrome-cpu-p50")
				}
			}
		}
	}
}

func BenchmarkFig5ControllerCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5ControllerCPU(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mirroring {
				b.ReportMetric(r.CDF.Median(), "mirror-cpu-p50")
				b.ReportMetric(100*(1-r.CDF.At(95)), "mirror-cpu-pct-over95")
			} else {
				b.ReportMetric(r.CDF.Median(), "plain-cpu-p50")
			}
		}
	}
}

func BenchmarkTable2VPN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Rows(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DownMbps, "slowest-down-Mbps")
		b.ReportMetric(rows[len(rows)-1].DownMbps, "fastest-down-Mbps")
	}
}

func BenchmarkFig6VPNEnergy(b *testing.B) {
	opts := paperOpts()
	// The paper bounds this experiment's duration by testing only Brave
	// and Chrome; repetitions stay at 5.
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6VPNEnergy(opts)
		if err != nil {
			b.Fatal(err)
		}
		f := experiments.SummarizeFig6(rows)
		b.ReportMetric(f.ChromeJapanDipPct, "chrome-japan-dip-pct")
		b.ReportMetric(f.MaxBraveSpreadSigma, "brave-max-spread-sigma")
	}
}

func BenchmarkSysPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.SysPerf(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.CtlCPUExtraAvg, "ctl-cpu-extra")
		b.ReportMetric(rep.UploadMB, "upload-MB")
		b.ReportMetric(rep.LatencyMean, "latency-s")
	}
}

func BenchmarkAblationRelayOverhead(b *testing.B) {
	opts := paperOpts()
	opts.VideoDuration = time.Minute
	opts.SampleRate = 1000
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationRelayOverhead(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.DeltaPct, "relay-delta-pct")
		b.ReportMetric(rep.KSDistance, "KS")
	}
}

func BenchmarkAblationBitrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBitrate(paperOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].UploadMB, "upload-at-1Mbps-MB")
	}
}

func BenchmarkAblationSampleRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSampleRate(paperOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ErrorPct, "err-at-50Hz-pct")
	}
}

func BenchmarkAblationAutomation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAutomation(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Channel == "adb-usb" {
				b.ReportMetric(r.DistortionPct, "usb-distortion-pct")
			}
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationScheduler(paperOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MakespanS, "per-device-makespan-s")
		b.ReportMetric(rows[1].MakespanS, "whole-node-makespan-s")
	}
}
