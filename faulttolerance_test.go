package batterylab

// End-to-end fault tolerance: a measurement campaign across two
// health-monitored vantage points survives one of them dying mid-run.
// The victim's in-flight build is reclaimed when its lease breaks and
// requeued; fallback placement moves it (and the victim's still-queued
// work) onto the surviving node, and the campaign completes — entirely
// on the virtual clock, so the whole failure story is deterministic.

import (
	"errors"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/api"
	"batterylab/internal/simclock"
)

// faultLab is a two-node platform with failure injection on node2.
type faultLab struct {
	clk   *simclock.Virtual
	plat  *Platform
	srv   *accessserver.Server
	admin *accessserver.User
	flk   *accessserver.FlakyNode
	// devices[node name] is the node's test device serial.
	devices map[string]string
}

func newFaultLab(t *testing.T) *faultLab {
	t.Helper()
	clk := VirtualClock()
	plat, err := NewPlatform(clk, 2019)
	if err != nil {
		t.Fatal(err)
	}
	l := &faultLab{clk: clk, plat: plat, srv: plat.Access, devices: map[string]string{}}
	for i, name := range []string{"node1", "node2"} {
		_, dev, _, err := NewVantagePoint(clk, plat, VantagePointConfig{
			Name: name, Seed: 100 + uint64(i), SkipBrowsers: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		l.devices[name] = dev.Serial()
	}
	// Re-register node2 behind the failure injector, then arm health
	// monitoring on both nodes.
	inner, err := l.srv.Nodes.Get("node2")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.srv.Nodes.Remove("node2"); err != nil {
		t.Fatal(err)
	}
	l.flk = accessserver.NewFlakyNode(inner)
	if err := l.srv.Nodes.Register(l.flk); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"node1", "node2"} {
		if err := l.srv.MonitorNode(name); err != nil {
			t.Fatal(err)
		}
	}
	l.admin, err = l.srv.Users.Add("boss", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// idleSpec is one 2-minute idle measurement with fallback enabled.
func (l *faultLab) idleSpec(node string) api.ExperimentSpec {
	return api.ExperimentSpec{
		Node: node, Device: l.devices[node],
		Monitor:     api.MonitorSpec{SampleRateHz: 100},
		Workload:    api.WorkloadSpec{Name: "idle", Params: api.Params{"duration_ms": 120000}},
		Constraints: api.ConstraintsSpec{AllowFallback: true},
	}
}

// runToCompletion drives the virtual clock event-by-event until every
// build reaches a terminal state, returning the simulated finish time.
func (l *faultLab) runToCompletion(t *testing.T, builds []*accessserver.Build) time.Time {
	t.Helper()
	terminal := func(b *accessserver.Build) bool {
		switch b.State() {
		case accessserver.StateSuccess, accessserver.StateFailure, accessserver.StateAborted:
			return true
		}
		return false
	}
	deadline := l.clk.Now().Add(4 * time.Hour) // simulated-time safety net
	for {
		done := true
		for _, b := range builds {
			if !terminal(b) {
				done = false
				break
			}
		}
		if done {
			return l.clk.Now()
		}
		next, ok := l.clk.NextDeadline()
		if !ok {
			t.Fatalf("campaign stalled: no pending timers, %d queued", l.srv.QueueLength())
		}
		if next.After(deadline) {
			t.Fatalf("campaign did not finish within the simulated budget")
		}
		l.clk.RunUntil(next)
	}
}

// runKillScenario is one full campaign-with-node-kill run; extracted so
// the determinism test can execute it twice on fresh labs.
type killOutcome struct {
	finishedAt time.Time
	states     []accessserver.BuildState
	retries    []int
	nodes      []string
}

func runKillScenario(t *testing.T) ([]*accessserver.Build, *faultLab, killOutcome) {
	t.Helper()
	l := newFaultLab(t)
	specs := api.CampaignSpec{Experiments: []api.ExperimentSpec{
		l.idleSpec("node1"), l.idleSpec("node2"),
		l.idleSpec("node1"), l.idleSpec("node2"),
	}}
	_, builds, err := l.srv.SubmitCampaign(l.admin, specs)
	if err != nil {
		t.Fatal(err)
	}
	// The vantage point dies 30 s into the campaign and never returns.
	l.clk.AfterFunc(30*time.Second, l.flk.Kill)
	finishedAt := l.runToCompletion(t, builds)

	out := killOutcome{finishedAt: finishedAt}
	for _, b := range builds {
		out.states = append(out.states, b.State())
		out.retries = append(out.retries, b.Retries())
		out.nodes = append(out.nodes, b.NodeName())
	}
	return builds, l, out
}

func TestCampaignSurvivesNodeKill(t *testing.T) {
	builds, l, _ := runKillScenario(t)

	for i, b := range builds {
		if b.State() != accessserver.StateSuccess {
			t.Fatalf("build %d state = %v (%v), want success", i, b.State(), b.Err())
		}
	}
	// Every run ended on the survivor or on node1 to begin with; the
	// in-flight node2 build was reclaimed by its lease and retried.
	if builds[1].Retries() < 1 {
		t.Fatalf("node2's in-flight build recorded %d retries, want >= 1", builds[1].Retries())
	}
	for i, b := range builds {
		if b.NodeName() != "node1" {
			t.Fatalf("build %d finished on %q, want node1 (the survivor)", i, b.NodeName())
		}
	}
	if h := l.srv.NodeHealth("node2").Health; h != accessserver.HealthOffline {
		t.Fatalf("dead node health = %v, want offline", h)
	}
	if h := l.srv.NodeHealth("node1").Health; h != accessserver.HealthOnline {
		t.Fatalf("survivor health = %v, want online", h)
	}
	// The failover is visible to streaming clients on the build feed
	// and in the wire status.
	evs, _, _ := builds[1].Feed().EventsSince(0)
	sawFailover := false
	for _, e := range evs {
		if e.Phase == api.EventFailover {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("no failover event on the reclaimed build's feed")
	}
	if builds[1].Attempts() < 2 {
		t.Fatalf("reclaimed build attempts = %d, want >= 2", builds[1].Attempts())
	}
}

// TestCampaignFailoverDeterministic runs the identical kill scenario on
// two fresh labs: same finish instant, same states, same retry counts,
// same final placements — byte-for-byte reproducible failure handling,
// the property the virtual clock exists to provide.
func TestCampaignFailoverDeterministic(t *testing.T) {
	_, _, a := runKillScenario(t)
	_, _, b := runKillScenario(t)
	if !a.finishedAt.Equal(b.finishedAt) {
		t.Fatalf("finish times differ: %v vs %v", a.finishedAt, b.finishedAt)
	}
	for i := range a.states {
		if a.states[i] != b.states[i] || a.retries[i] != b.retries[i] || a.nodes[i] != b.nodes[i] {
			t.Fatalf("run divergence at build %d: (%v,%d,%s) vs (%v,%d,%s)",
				i, a.states[i], a.retries[i], a.nodes[i], b.states[i], b.retries[i], b.nodes[i])
		}
	}
}

// TestPinnedBuildFailsWhenNodeDies: without fallback, the same node
// loss fails the build with the typed ErrNodeLost once the retry
// budget is spent waiting on a node that never returns.
func TestPinnedBuildFailsWhenNodeDies(t *testing.T) {
	l := newFaultLab(t)
	spec := l.idleSpec("node2")
	spec.Constraints.AllowFallback = false
	b, err := l.srv.SubmitSpec(l.admin, spec)
	if err != nil {
		t.Fatal(err)
	}
	l.clk.AfterFunc(30*time.Second, l.flk.Kill)
	l.runToCompletion(t, []*accessserver.Build{b})
	if b.State() != accessserver.StateFailure {
		t.Fatalf("state = %v, want failure", b.State())
	}
	if !errors.Is(b.Err(), accessserver.ErrNodeLost) {
		t.Fatalf("err = %v, want ErrNodeLost", b.Err())
	}
}
