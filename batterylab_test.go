package batterylab

import (
	"context"
	"testing"
	"time"
)

func TestDeploymentQuickstart(t *testing.T) {
	clock := VirtualClock()
	dep, err := NewDeployment(clock, DeploymentConfig{Seed: 7, VideoPath: "/sdcard/v.mp4"})
	if err != nil {
		t.Fatal(err)
	}
	if dep.FQDN != "node1.batterylab.dev" {
		t.Fatalf("fqdn = %s", dep.FQDN)
	}
	prof, err := FindBrowserProfile("Brave")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Platform.RunExperiment(context.Background(), ExperimentSpec{
		Node:       dep.NodeName,
		Device:     dep.DeviceSerial,
		SampleRate: 100,
		Workload: func(drv Driver) *Script {
			return BuildBrowserWorkload(drv, prof.Package, BrowserWorkloadOptions{
				Pages:   NewsSites()[:2],
				Scrolls: 2,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyMAH <= 0 {
		t.Fatal("no energy measured")
	}
	if res.Duration < 20*time.Second {
		t.Fatalf("duration = %v", res.Duration)
	}
}

func TestDeploymentSkipBrowsers(t *testing.T) {
	clock := VirtualClock()
	dep, err := NewDeployment(clock, DeploymentConfig{Seed: 7, SkipBrowsers: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(dep.Device.Packages()); n != 0 {
		t.Fatalf("packages = %d, want 0", n)
	}
}

func TestFacadeCatalogues(t *testing.T) {
	if len(BrowserProfiles()) != 4 {
		t.Fatal("browser profiles")
	}
	if len(VPNExits()) != 5 {
		t.Fatal("vpn exits")
	}
	if len(NewsSites()) != 10 {
		t.Fatal("news sites")
	}
	if len(SampleMP4(100)) != 100 {
		t.Fatal("sample mp4")
	}
	if _, err := FindBrowserProfile("IE6"); err == nil {
		t.Fatal("IE6 found")
	}
}

func TestRunForAdvancesVirtual(t *testing.T) {
	clock := VirtualClock()
	dep, err := NewDeployment(clock, DeploymentConfig{SkipBrowsers: true})
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	dep.RunFor(time.Minute)
	if clock.Now().Sub(before) != time.Minute {
		t.Fatal("RunFor did not advance")
	}
}
