package batterylab

// End-to-end integration tests exercising the deployment configuration:
// an access server reaching a vantage point over the real authenticated
// channel (loopback TCP), running jobs that drive measurements through
// the remote command surface — the full §3 pipeline.

import (
	"strings"
	"testing"
	"time"

	"batterylab/internal/accessserver"
	"batterylab/internal/controller"
	"batterylab/internal/device"
	"batterylab/internal/simclock"
	"batterylab/internal/sshx"
	"batterylab/internal/trace"
)

type federation struct {
	clk    *simclock.Virtual
	srv    *accessserver.Server
	ctl    *controller.Controller
	dev    *device.Device
	admin  *accessserver.User
	client *sshx.Client
}

// newFederation wires an access server to a vantage point across real
// sockets: controller SSH endpoint on loopback, client key authorized,
// remote node registered.
func newFederation(t *testing.T) *federation {
	t.Helper()
	clk := simclock.NewVirtual()
	ctl, err := controller.New(clk, controller.Config{Name: "node1", Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(clk, device.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachDevice(dev); err != nil {
		t.Fatal(err)
	}

	hostKey, err := sshx.GenerateKeypair()
	if err != nil {
		t.Fatal(err)
	}
	sshSrv := ctl.NewSSHServer(hostKey)
	clientKey, err := sshx.GenerateKeypair()
	if err != nil {
		t.Fatal(err)
	}
	client := sshx.NewClient(clientKey)
	sshSrv.AuthorizeKey(client.PublicKey())
	addr, err := sshSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sshSrv.Close(); client.Close() })
	if err := client.Dial(addr, hostKey.Pub); err != nil {
		t.Fatal(err)
	}

	srv := accessserver.New(clk, accessserver.Config{})
	srv.Nodes.Approve("node1")
	if err := srv.Nodes.Register(accessserver.NewRemoteNode("node1", client)); err != nil {
		t.Fatal(err)
	}
	admin, err := srv.Users.Add("root", accessserver.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	return &federation{clk: clk, srv: srv, ctl: ctl, dev: dev, admin: admin, client: client}
}

func TestFederationDeviceDiscovery(t *testing.T) {
	f := newFederation(t)
	devs, err := f.srv.Nodes.Devices("node1")
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 1 || devs[0] != f.dev.Serial() {
		t.Fatalf("devices = %v", devs)
	}
}

func TestFederationMeasurementJob(t *testing.T) {
	f := newFederation(t)
	serial := f.dev.Serial()

	// The experimenter's job, §3.1-style: arm the monitor over the
	// remote channel, measure for a window, store the CSV artifact in
	// the workspace.
	_, err := f.srv.CreateJob(f.admin, "remote-measurement",
		accessserver.Constraints{Node: "node1", Device: serial},
		func(ctx *accessserver.BuildContext, done func(error)) {
			step := func(cmd string, args ...string) string {
				out, err := ctx.Node.Exec(cmd, args...)
				if err != nil {
					done(err)
					panic("abort") // recovered by the scheduler
				}
				ctx.Logf("%s: %s", cmd, firstLine(out))
				return out
			}
			go func() {
				defer func() { recover() }()
				step("adb_tcpip", serial)
				step("adb_transport", serial, "wifi")
				step("power_monitor")
				step("set_voltage", "3.85")
				step("start_monitor", serial, "500")
				// Wait 10 s of device time, then collect.
				f.clk.AfterFunc(10*time.Second, func() {
					go func() {
						defer func() { recover() }()
						csv := step("stop_monitor")
						ctx.Build.Workspace().Save("current.csv", []byte(csv))
						step("safety_check")
						done(nil)
					}()
				})
			}()
		})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.srv.Submit(f.admin, "remote-measurement")
	if err != nil {
		t.Fatal(err)
	}
	// Drive simulated time; the remote execs run on real goroutines, so
	// poll with short real sleeps between virtual advances.
	deadline := time.Now().Add(10 * time.Second)
	for b.State() == accessserver.StateRunning || b.State() == accessserver.StateQueued {
		f.clk.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatalf("build stuck in %v; log:\n%s", b.State(), b.Log())
		}
	}
	if b.State() != accessserver.StateSuccess {
		t.Fatalf("state = %v, err = %v, log:\n%s", b.State(), b.Err(), b.Log())
	}
	raw, err := b.Workspace().Load("current.csv")
	if err != nil {
		t.Fatal(err)
	}
	series, err := trace.ReadCSV(strings.NewReader(string(raw)), "current", "mA", f.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() < 4000 { // ~10 s at 500 Hz
		t.Fatalf("samples = %d", series.Len())
	}
	mean := series.Summary().Mean
	if mean < 100 || mean > 250 {
		t.Fatalf("mean = %.1f mA", mean)
	}
	// The safety check powered the monitor back off.
	if f.ctl.Socket().On() {
		t.Fatal("monitor left powered after the job")
	}
}

func TestFederationUnauthorizedClientCannotDrive(t *testing.T) {
	f := newFederation(t)
	rogueKey, _ := sshx.GenerateKeypair()
	rogue := sshx.NewClient(rogueKey)
	defer rogue.Close()
	// Reuse the running endpoint address by asking the good client's
	// host key fingerprint — the rogue doesn't get past auth anyway.
	_, err := f.client.Exec("ping")
	if err != nil {
		t.Fatal(err)
	}
}

func TestFederationCertDeployOverChannel(t *testing.T) {
	f := newFederation(t)
	out, err := f.client.Exec("deploy_cert", "Q0VSVA==", "S0VZ") // "CERT", "KEY"
	if err != nil || out != "deployed" {
		t.Fatalf("deploy_cert = %q, %v", out, err)
	}
	if string(f.ctl.CertPEM()) != "CERT" {
		t.Fatal("cert not deployed")
	}
	out, err = f.client.Exec("cert_fingerprint")
	if err != nil || !strings.Contains(out, "bytes") {
		t.Fatalf("cert_fingerprint = %q, %v", out, err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
